"""Flat SoA mirror of the BVH: the packet traversal fast path.

The node-based :class:`~repro.raytracer.bvh.BVH` pays one
``AABB.intersects_ray_block`` call (~30 NumPy dispatches) per visited node
and one ``intersect_block`` call per visited *leaf* — with ever-shrinking
active sets that overhead dominates once packets thin out, which is why
thin image sections render ~5x slower per ray than wide ones (ROADMAP
item 3).  :class:`FlatBVH` removes both costs without changing a single
pixel:

* the tree is **compiled** into contiguous structure-of-arrays storage
  (``box_min``/``box_max`` ``(m, 3)``, ``left``/``right``/``skip``/
  ``primitive_index`` int arrays) laid out in the exact depth-first order
  the node-based traversal visits, so one subtree is one contiguous index
  range;
* leaf primitives are grouped **by kernel type** into batched parameter
  arrays (sphere centres/radii, triangle vertices, a generic fallback
  list), with per-type prefix-count arrays — the leaves under any subtree
  form a contiguous slice of each parameter array;
* traversal keeps an explicit index stack of ``(node, active-ray-indices)``
  pairs and a **batch budget**: as soon as a subtree is small enough
  relative to the surviving packet, all its leaves are tested in one 2-D
  ``(rays x leaves)`` NumPy kernel instead of one dispatch per leaf.

The batched kernels reproduce :meth:`Sphere.intersect_block` /
:meth:`Triangle.intersect_block` operation-for-operation and the looser
``t_max`` bound used at batch time can only *admit* extra candidates (the
per-ray minimum over a leaf range is taken afterwards), so the returned
hits are identical to the node-based traversal — the node ``BVH`` remains
the construction structure and the correctness oracle; the property suite
in ``tests/raytracer/test_flatbvh.py`` pins exact equality.

:func:`scene_flat_index` caches the compiled ``FlatBVH`` on the scene
beside :class:`~repro.raytracer.packet.ScenePacketData` and applies the
same three staleness rules (rebuilt index object, in-place ``BVH.insert``,
grown brute-force list); :meth:`Scene.invalidate_packet_cache` drops both
caches explicitly (in-place ``Material`` mutation is invisible to the
staleness checks).  Edits committed through the mutation journal
(:meth:`Scene.begin_edit`) need no manual invalidation: ``commit()`` drops
``_flat_index`` after every geometry edit (the node BVH is refit in place,
which the staleness rules cannot see) and ``_packet_data`` after material
edits — the next render recompiles from the refit tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from repro.raytracer.bvh import BVH, TraversalStats
from repro.raytracer.geometry.primitives import Primitive, Sphere, Triangle
from repro.raytracer.vec import broadcast_tmax

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.raytracer.scene import Scene

__all__ = ["FlatBVH", "scene_flat_index"]

#: treat a direction component below this as parallel to the slab axis
#: (must match ``AABB.intersects_ray_block`` so both traversals gate the
#: same candidate set on degenerate rays)
_DEGENERATE = 1e-15

#: sentinel slot larger than any real leaf slot (tie-break folding)
_NO_SLOT = np.iinfo(np.int64).max


class FlatBVH:
    """Contiguous SoA compilation of a node-based :class:`BVH`.

    Built with :meth:`from_bvh`; immutable afterwards (a mutated ``BVH`` is
    recompiled by :func:`scene_flat_index` via the shared staleness rules).
    Exposes the same packet query interface as :class:`BVH` /
    :class:`BruteForceIndex` — ``intersect_packet`` / ``any_hit_packet`` /
    ``packet_primitives`` / ``stats`` — so it can stand in for either in
    :func:`~repro.raytracer.packet.cast_packet`.
    """

    #: max ``active_rays * subtree_leaves`` elements for a batched leaf
    #: test; above it the traversal keeps descending (pruning beats
    #: batching while the product is large)
    BATCH_WORK = 8192

    def __init__(self) -> None:
        self.source: Optional[BVH] = None
        self.primitives: List[Primitive] = []
        self.num_primitives = 0
        self.stats = TraversalStats()
        #: batched leaf-range tests performed (dispatch-count telemetry)
        self.leaf_batches = 0
        # node arrays (m = 2 * leaves - 1 for a non-empty tree)
        self.box_min = np.zeros((0, 3))
        self.box_max = np.zeros((0, 3))
        self.left = np.zeros(0, dtype=np.int64)
        self.right = np.zeros(0, dtype=np.int64)
        self.skip = np.zeros(0, dtype=np.int64)
        self.primitive_index = np.zeros(0, dtype=np.int64)
        self.first_leaf = np.zeros(0, dtype=np.int64)
        self.leaf_end = np.zeros(0, dtype=np.int64)
        # per-kind leaf parameter arrays + prefix counts over leaf slots
        self.sphere_center = np.zeros((0, 3))
        self.sphere_r2 = np.zeros(0)
        self.sphere_slot = np.zeros(0, dtype=np.int64)
        self.sphere_before = np.zeros(1, dtype=np.int64)
        self.tri_v0 = np.zeros((0, 3))
        self.tri_edge1 = np.zeros((0, 3))
        self.tri_edge2 = np.zeros((0, 3))
        self.tri_slot = np.zeros(0, dtype=np.int64)
        self.tri_before = np.zeros(1, dtype=np.int64)
        self.other_prims: List[Tuple[int, Primitive]] = []
        self.other_before = np.zeros(1, dtype=np.int64)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_bvh(cls, bvh: BVH) -> "FlatBVH":
        """Compile ``bvh`` into flat arrays (iterative — no recursion)."""
        flat = cls()
        flat.source = bvh
        flat.primitives = bvh.packet_primitives  # shared list, leaf order
        flat.num_primitives = len(flat.primitives)
        if bvh.root is None:
            return flat
        # depth-first layout in the exact order BVH.leaves() visits (right
        # child first), so leaf slots coincide with packet-primitive rows
        nodes = []
        stack = [bvh.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                stack.append(node.left)
                stack.append(node.right)
        m = len(nodes)
        pos = {id(node): i for i, node in enumerate(nodes)}
        flat.box_min = np.empty((m, 3))
        flat.box_max = np.empty((m, 3))
        flat.left = np.full(m, -1, dtype=np.int64)
        flat.right = np.full(m, -1, dtype=np.int64)
        flat.skip = np.empty(m, dtype=np.int64)
        flat.primitive_index = np.full(m, -1, dtype=np.int64)
        is_leaf = np.zeros(m, dtype=np.int64)
        leaf_slot = 0
        for i, node in enumerate(nodes):
            flat.box_min[i] = node.box.minimum
            flat.box_max[i] = node.box.maximum
            if node.is_leaf:
                is_leaf[i] = 1
                flat.primitive_index[i] = leaf_slot
                if node.primitive is not bvh.packet_primitives[leaf_slot]:
                    raise AssertionError(
                        "flat leaf order diverged from BVH.packet_primitives"
                    )
                leaf_slot += 1
            else:
                flat.left[i] = pos[id(node.left)]
                flat.right[i] = pos[id(node.right)]
        # skip pointers: subtree of i occupies [i, skip[i]); the right child
        # starts at i + 1 and ends where the left child starts
        flat.skip[0] = m
        for i in range(m):
            li, ri = flat.left[i], flat.right[i]
            if li >= 0:
                flat.skip[ri] = li
                flat.skip[li] = flat.skip[i]
        # leaf ranges: leaves before position i (exclusive prefix over layout)
        leaf_before = np.concatenate(([0], np.cumsum(is_leaf)))
        flat.first_leaf = leaf_before[:m]
        flat.leaf_end = leaf_before[flat.skip]
        # per-kind parameter arrays in leaf-slot order
        prims = flat.primitives
        kinds = np.zeros(len(prims), dtype=np.int64)  # 0=sphere 1=tri 2=other
        spheres: List[Sphere] = []
        tris: List[Triangle] = []
        sph_slots: List[int] = []
        tri_slots: List[int] = []
        for slot, prim in enumerate(prims):
            if type(prim) is Sphere:
                spheres.append(prim)
                sph_slots.append(slot)
            elif type(prim) is Triangle:
                kinds[slot] = 1
                tris.append(prim)
                tri_slots.append(slot)
            else:
                kinds[slot] = 2
                flat.other_prims.append((slot, prim))
        if spheres:
            flat.sphere_center = np.stack([s.center for s in spheres])
            flat.sphere_r2 = np.array([s.radius * s.radius for s in spheres])
            flat.sphere_slot = np.array(sph_slots, dtype=np.int64)
        if tris:
            flat.tri_v0 = np.stack([t.v0 for t in tris])
            flat.tri_edge1 = np.stack([t.v1 - t.v0 for t in tris])
            flat.tri_edge2 = np.stack([t.v2 - t.v0 for t in tris])
            flat.tri_slot = np.array(tri_slots, dtype=np.int64)
        flat.sphere_before = np.concatenate(([0], np.cumsum(kinds == 0)))
        flat.tri_before = np.concatenate(([0], np.cumsum(kinds == 1)))
        flat.other_before = np.concatenate(([0], np.cumsum(kinds == 2)))
        return flat

    # -- interface parity with BVH/BruteForceIndex ---------------------------
    @property
    def size(self) -> int:
        return self.num_primitives

    @property
    def packet_primitives(self) -> List[Primitive]:
        """Leaf primitives in traversal order; hit indices refer here."""
        return self.primitives

    # -- traversal helpers ---------------------------------------------------
    def _packet_inverse(self, directions: np.ndarray) -> Tuple[np.ndarray, Any]:
        """Per-packet reciprocal directions plus the degenerate-axis mask.

        Computed once per packet instead of once per node: the per-node slab
        test reduces to two fused subtract-multiplies, a min/max pair and
        two reductions.  ``deg`` is ``None`` for packets without degenerate
        components (the overwhelmingly common case), which lets the hot loop
        skip the parallel-ray handling entirely.
        """
        deg = np.abs(directions) < _DEGENERATE
        if not deg.any():
            deg = None
            safe = directions
        else:
            safe = np.where(deg, 1.0, directions)
        return 1.0 / safe, deg

    def _box_mask(
        self,
        i: int,
        origins: np.ndarray,
        inv: np.ndarray,
        deg,
        t_min: float,
        hi0: np.ndarray,
    ) -> np.ndarray:
        """Slab test of node ``i`` for the active rays (bool mask).

        Same accept set as ``AABB.intersects_ray_block`` — including the
        parallel-ray rule: a degenerate axis leaves the interval
        unconstrained when the origin lies inside the slab and rejects the
        ray outright when it does not.
        """
        t0 = (self.box_min[i] - origins) * inv
        t1 = (self.box_max[i] - origins) * inv
        near = np.minimum(t0, t1)
        far = np.maximum(t0, t1)
        if deg is not None:
            near = np.where(deg, -np.inf, near)
            far = np.where(deg, np.inf, far)
        lo = np.maximum(near.max(axis=1), t_min)
        hi = np.minimum(far.min(axis=1), hi0)
        mask = lo <= hi
        if deg is not None:
            outside = (origins < self.box_min[i]) | (origins > self.box_max[i])
            mask &= ~(deg & outside).any(axis=1)
        return mask

    def _range_closest(
        self,
        a: int,
        b: int,
        origins: np.ndarray,
        directions: np.ndarray,
        t_min: float,
        tmax: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Closest hit among leaf slots ``[a, b)``: per-ray ``(t, slot)``.

        One 2-D kernel per primitive kind present in the range; the fold
        across kinds breaks exact-``t`` ties towards the lower leaf slot,
        matching the visit order of the node-based traversal.
        """
        r = origins.shape[0]
        best = np.full(r, np.inf)
        slot = np.full(r, _NO_SLOT, dtype=np.int64)
        tm = tmax[:, None]
        s0, s1 = self.sphere_before[a], self.sphere_before[b]
        if s1 > s0:
            self.stats.primitive_tests += int(r * (s1 - s0))
            oc = origins[:, None, :] - self.sphere_center[s0:s1]
            half_b = np.einsum("rsk,rk->rs", oc, directions)
            c = np.einsum("rsk,rsk->rs", oc, oc) - self.sphere_r2[s0:s1]
            disc = half_b * half_b - c
            valid = disc >= 0.0
            sqrt_d = np.sqrt(np.where(valid, disc, 0.0))
            near = -half_b - sqrt_d
            far = -half_b + sqrt_d
            near_ok = valid & (near >= t_min) & (near <= tm)
            far_ok = valid & (far >= t_min) & (far <= tm)
            ts = np.where(near_ok, near, np.where(far_ok, far, np.inf))
            col = np.argmin(ts, axis=1)
            t_kind = ts[np.arange(r), col]
            s_kind = self.sphere_slot[s0 + col]
            better = (t_kind < best) | ((t_kind == best) & (s_kind < slot))
            best = np.where(better, t_kind, best)
            slot = np.where(better & np.isfinite(t_kind), s_kind, slot)
        g0, g1 = self.tri_before[a], self.tri_before[b]
        if g1 > g0:
            self.stats.primitive_tests += int(r * (g1 - g0))
            edge2 = self.tri_edge2[g0:g1]
            h = np.cross(directions[:, None, :], edge2[None, :, :])
            aa = np.einsum("rsk,sk->rs", h, self.tri_edge1[g0:g1])
            valid = np.abs(aa) >= 1e-12
            f = 1.0 / np.where(valid, aa, 1.0)
            s = origins[:, None, :] - self.tri_v0[g0:g1]
            u = f * np.einsum("rsk,rsk->rs", s, h)
            q = np.cross(s, self.tri_edge1[g0:g1][None, :, :])
            v = f * np.einsum("rk,rsk->rs", directions, q)
            cand = f * np.einsum("rsk,sk->rs", q, edge2)
            ok = (
                valid
                & (u >= 0.0)
                & (u <= 1.0)
                & (v >= 0.0)
                & (u + v <= 1.0)
                & (cand >= t_min)
                & (cand <= tm)
            )
            ts = np.where(ok, cand, np.inf)
            col = np.argmin(ts, axis=1)
            t_kind = ts[np.arange(r), col]
            s_kind = self.tri_slot[g0 + col]
            better = (t_kind < best) | ((t_kind == best) & (s_kind < slot))
            best = np.where(better, t_kind, best)
            slot = np.where(better & np.isfinite(t_kind), s_kind, slot)
        o0, o1 = self.other_before[a], self.other_before[b]
        for prim_slot, prim in self.other_prims[o0:o1]:
            self.stats.primitive_tests += int(r)
            ts = prim.intersect_block(origins, directions, t_min, tmax)
            better = (ts < best) | ((ts == best) & (prim_slot < slot))
            best = np.where(better, ts, best)
            slot = np.where(better & np.isfinite(ts), prim_slot, slot)
        return best, slot

    def _range_any(
        self,
        a: int,
        b: int,
        origins: np.ndarray,
        directions: np.ndarray,
        t_min: float,
        tmax: np.ndarray,
    ) -> np.ndarray:
        """Occlusion among leaf slots ``[a, b)``: per-ray bool."""
        r = origins.shape[0]
        hit = np.zeros(r, dtype=bool)
        tm = tmax[:, None]
        s0, s1 = self.sphere_before[a], self.sphere_before[b]
        if s1 > s0:
            self.stats.primitive_tests += int(r * (s1 - s0))
            oc = origins[:, None, :] - self.sphere_center[s0:s1]
            half_b = np.einsum("rsk,rk->rs", oc, directions)
            c = np.einsum("rsk,rsk->rs", oc, oc) - self.sphere_r2[s0:s1]
            disc = half_b * half_b - c
            valid = disc >= 0.0
            sqrt_d = np.sqrt(np.where(valid, disc, 0.0))
            near = -half_b - sqrt_d
            far = -half_b + sqrt_d
            near_ok = valid & (near >= t_min) & (near <= tm)
            far_ok = valid & (far >= t_min) & (far <= tm)
            hit |= (near_ok | far_ok).any(axis=1)
        g0, g1 = self.tri_before[a], self.tri_before[b]
        if g1 > g0 and not hit.all():
            self.stats.primitive_tests += int(r * (g1 - g0))
            edge2 = self.tri_edge2[g0:g1]
            h = np.cross(directions[:, None, :], edge2[None, :, :])
            aa = np.einsum("rsk,sk->rs", h, self.tri_edge1[g0:g1])
            valid = np.abs(aa) >= 1e-12
            f = 1.0 / np.where(valid, aa, 1.0)
            s = origins[:, None, :] - self.tri_v0[g0:g1]
            u = f * np.einsum("rsk,rsk->rs", s, h)
            q = np.cross(s, self.tri_edge1[g0:g1][None, :, :])
            v = f * np.einsum("rk,rsk->rs", directions, q)
            cand = f * np.einsum("rsk,sk->rs", q, edge2)
            ok = (
                valid
                & (u >= 0.0)
                & (u <= 1.0)
                & (v >= 0.0)
                & (u + v <= 1.0)
                & (cand >= t_min)
                & (cand <= tm)
            )
            hit |= ok.any(axis=1)
        o0, o1 = self.other_before[a], self.other_before[b]
        for _, prim in self.other_prims[o0:o1]:
            if hit.all():
                break
            self.stats.primitive_tests += int(r)
            ts = prim.intersect_block(origins, directions, t_min, tmax)
            hit |= np.isfinite(ts)
        return hit

    # -- packet queries ------------------------------------------------------
    def intersect_packet(
        self, origins: np.ndarray, directions: np.ndarray, t_min: float = 1e-6
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Closest hit for a whole ray packet; identical to ``BVH``'s.

        Returns ``(indices, t)`` with indices into :attr:`packet_primitives`
        (``-1``/``np.inf`` for misses).
        """
        n = origins.shape[0]
        best_t = np.full(n, np.inf)
        best_index = np.full(n, -1, dtype=np.int64)
        if self.box_min.shape[0] == 0 or n == 0:
            return best_index, best_t
        inv, deg = self._packet_inverse(directions)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(n))]
        with np.errstate(over="ignore", invalid="ignore"):
            while stack:
                i, active = stack.pop()
                self.stats.node_visits += int(active.size)
                mask = self._box_mask(
                    i,
                    origins[active],
                    inv[active],
                    None if deg is None else deg[active],
                    t_min,
                    best_t[active],
                )
                active = active[mask]
                if active.size == 0:
                    continue
                a, b = int(self.first_leaf[i]), int(self.leaf_end[i])
                count = b - a
                if count == 1 or count * active.size <= self.BATCH_WORK:
                    self.leaf_batches += 1
                    t, slot = self._range_closest(
                        a, b, origins[active], directions[active], t_min, best_t[active]
                    )
                    closer = t < best_t[active]
                    hits = active[closer]
                    best_t[hits] = t[closer]
                    best_index[hits] = slot[closer]
                    continue
                # push left then right: the right child (laid out at i + 1)
                # pops first, preserving the node traversal's visit order
                stack.append((int(self.left[i]), active))
                stack.append((int(self.right[i]), active))
        return best_index, best_t

    def any_hit_packet(
        self, origins: np.ndarray, directions: np.ndarray, t_min: float = 1e-6, t_max=np.inf
    ) -> np.ndarray:
        """Vectorized occlusion query; ``t_max`` may be per-ray."""
        n = origins.shape[0]
        occluded = np.zeros(n, dtype=bool)
        if self.box_min.shape[0] == 0 or n == 0:
            return occluded
        tmax = broadcast_tmax(t_max, n)
        inv, deg = self._packet_inverse(directions)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(n))]
        with np.errstate(over="ignore", invalid="ignore"):
            while stack:
                i, active = stack.pop()
                active = active[~occluded[active]]
                if active.size == 0:
                    continue
                self.stats.node_visits += int(active.size)
                mask = self._box_mask(
                    i,
                    origins[active],
                    inv[active],
                    None if deg is None else deg[active],
                    t_min,
                    tmax[active],
                )
                active = active[mask]
                if active.size == 0:
                    continue
                a, b = int(self.first_leaf[i]), int(self.leaf_end[i])
                count = b - a
                if count == 1 or count * active.size <= self.BATCH_WORK:
                    self.leaf_batches += 1
                    hit = self._range_any(
                        a, b, origins[active], directions[active], t_min, tmax[active]
                    )
                    occluded[active[hit]] = True
                    continue
                stack.append((int(self.left[i]), active))
                stack.append((int(self.right[i]), active))
        return occluded


def scene_flat_index(scene: "Scene"):
    """The scene's traversal index for the fused path, compiled and cached.

    For a BVH-indexed scene this returns a (cached) :class:`FlatBVH`
    compiled from ``scene.index``; a brute-force-indexed scene returns the
    index itself (it is already array-batched).  Staleness mirrors
    :func:`~repro.raytracer.packet.scene_packet_data` exactly: a rebuilt
    index object (``Scene.add``), an in-place ``BVH.insert`` (leaf list
    object swapped), or a grown brute-force list.  In-place ``Material``
    mutation does not alter geometry, so the compiled arrays stay valid;
    call :meth:`Scene.invalidate_packet_cache` after mutating primitives
    in place.
    """
    index = scene.index  # also populates the unbounded list
    if not isinstance(index, BVH):
        return index
    cached = getattr(scene, "_flat_index", None)
    if (
        cached is not None
        and cached.source is index
        and cached.primitives is index.packet_primitives
        and cached.num_primitives == len(cached.primitives)
    ):
        return cached
    flat = FlatBVH.from_bvh(index)
    scene._flat_index = flat
    return flat
