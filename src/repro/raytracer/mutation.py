"""Scene mutation journal: explicit edits, cheap epochs, incremental hashing.

Scenes used to be immutable job payloads — the S-Net purity contract — and
the warm :class:`~repro.apps.service.RenderService` keyed its slots by a
full-scene content hash.  Animation through that door meant rebuilding a
content-twin :class:`~repro.raytracer.scene.Scene` per keyframe, which
throws away exactly the information an incremental renderer needs: *what
changed*.

This module makes mutation explicit instead of forbidden:

* :meth:`Scene.begin_edit() <repro.raytracer.scene.Scene.begin_edit>`
  returns a :class:`SceneEditor`; edits are staged and applied atomically on
  :meth:`SceneEditor.commit`, which

  - mutates the scene in place (with per-primitive attribute whitelists and
    the same dtype conversions the constructors perform),
  - refits the BVH for moved bounded primitives (leaf order preserved — see
    :meth:`BVH.refit <repro.raytracer.bvh.BVH.refit>` — so packet/flat
    traversal tie-breaks cannot flip),
  - drops exactly the derived caches the edit invalidates (flat-BVH on
    geometry, packet material arrays on material, the whole index on
    add/remove),
  - updates the memoised :func:`scene_content_key` in **O(changed objects)**
    — per-object digests are cached, only touched objects are re-hashed —
  - bumps ``scene.edit_epoch`` and records an :class:`EditEntry` in the
    scene's :class:`MutationJournal`.

* Workers that hold a stale fork-shared copy of the scene replay the journal
  with :func:`apply_edits` — application is idempotent (epoch-gated), so a
  worker may receive the same entries many times (once per dirty section).

The journal is the ground truth for the dirty-tile planner in
:mod:`repro.raytracer.coherence` and for the incremental
``scene_content_key`` satellite; both are pinned against from-scratch
recomputation by ``tests/raytracer/test_mutation.py``.

>>> from repro.raytracer.scene import Scene, Light
>>> from repro.raytracer.geometry.primitives import Sphere
>>> from repro.raytracer.materials import Material
>>> from repro.raytracer.vec import vec3
>>> s = Sphere(vec3(0, 0, -5), 1.0)
>>> scene = Scene([s], [Light(vec3(0, 4, 0))])
>>> key0 = scene_content_key(scene)
>>> edit = scene.begin_edit()
>>> edit.update(s, center=vec3(0.5, 0.0, -5.0))
>>> scene.edit_epoch == 0  # nothing applied until commit
True
>>> epoch = edit.commit()
>>> epoch, scene.edit_epoch
(1, 1)
>>> scene_content_key(scene) != key0  # key tracks the edit incrementally
True
>>> len(scene.journal.entries_since(0)[0].ops)
1
"""

from __future__ import annotations

import hashlib
import pickle
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.raytracer.bvh import BVH
from repro.raytracer.geometry.primitives import Plane, Primitive, Sphere, Triangle
from repro.raytracer.materials import Material
from repro.raytracer.vec import cross, normalize

__all__ = [
    "EditOp",
    "EditEntry",
    "MutationJournal",
    "SceneEditor",
    "apply_edits",
    "scene_content_key",
]


# -- scene content hashing ----------------------------------------------------
#
# Moved here from repro.apps.service so the incremental update (commit-time
# digest maintenance) and the from-scratch definition live side by side; the
# service re-exports :func:`scene_content_key` unchanged.

_KEY_ATTR = "_repro_content_key"
_DIGEST_ATTR = "_repro_digest_map"
_SETTINGS_ATTR = "_repro_settings_digest"


def _canonical(value: Any) -> Any:
    """A picklable, content-deterministic description of one scene value.

    NumPy arrays hash by shape/dtype/bytes; objects with a ``__dict__``
    (primitives, materials, lights, cameras) hash by their sorted attributes
    with the global ``primitive_id`` counter excluded — two scenes built from
    the same description must produce the same key even though their
    primitive ids differ.
    """
    if isinstance(value, np.ndarray):
        return ("nd", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return value
    if isinstance(value, Material) or hasattr(value, "__dict__"):
        attrs = {
            name: attr
            for name, attr in vars(value).items()
            if name != "primitive_id" and not name.startswith("_")
        }
        return (
            type(value).__name__,
            tuple((name, _canonical(attr)) for name, attr in sorted(attrs.items())),
        )
    return repr(value)


def _object_digest(obj: Any) -> bytes:
    """32-byte content digest of one primitive (geometry + material)."""
    return hashlib.sha256(pickle.dumps(_canonical(obj), protocol=5)).digest()


def _settings_digest(scene: Any) -> bytes:
    """Digest of everything outside the object list that shapes the image."""
    description = (
        tuple(_canonical(light) for light in scene.lights),
        _canonical(scene.background),
        scene.max_ray_depth,
        scene.use_bvh,
        _canonical(getattr(scene, "camera", None)),
    )
    return hashlib.sha256(pickle.dumps(description, protocol=5)).digest()


def _digest_map(scene: Any) -> Dict[int, bytes]:
    """Per-object digest cache keyed by ``primitive_id`` (built on demand).

    A length mismatch (an ``add`` outside the editor) rebuilds the map; edits
    through :class:`SceneEditor` keep it current in O(changed objects).
    """
    cached = getattr(scene, _DIGEST_ATTR, None)
    if cached is None or len(cached) != len(scene.objects):
        cached = {obj.primitive_id: _object_digest(obj) for obj in scene.objects}
        setattr(scene, _DIGEST_ATTR, cached)
    return cached


def _combine_key(scene: Any) -> str:
    """Fold the cached digests into the 16-hex-char scene key (no re-hash)."""
    digests = _digest_map(scene)
    settings = getattr(scene, _SETTINGS_ATTR, None)
    if settings is None:
        settings = _settings_digest(scene)
        setattr(scene, _SETTINGS_ATTR, settings)
    blob = b"".join(digests[obj.primitive_id] for obj in scene.objects) + settings
    key = hashlib.sha256(blob).hexdigest()[:16]
    setattr(scene, _KEY_ATTR, key)
    return key


def scene_content_key(scene: Any) -> str:
    """Content hash of a scene: equal for content-identical scene objects.

    The key covers everything that determines the rendered image — objects
    (geometry + material), lights, background, recursion depth, camera and
    the acceleration-structure choice — and deliberately excludes derived
    state (the lazily built BVH) and the process-global ``primitive_id``
    counters.

    The key is memoised on the scene object.  Mutating a scene through
    :meth:`Scene.begin_edit <repro.raytracer.scene.Scene.begin_edit>`
    updates the memo incrementally in O(changed objects): per-object digests
    are cached and only edited objects are re-canonicalised; ad-hoc mutation
    outside the editor remains unsupported (the memo would go stale).

    >>> from repro.raytracer.scene import random_scene
    >>> a, b = random_scene(num_spheres=3), random_scene(num_spheres=3)
    >>> a is not b and scene_content_key(a) == scene_content_key(b)
    True
    >>> scene_content_key(random_scene(num_spheres=4)) == scene_content_key(a)
    False
    """
    cached = getattr(scene, _KEY_ATTR, None)
    if cached is not None:
        return cached
    return _combine_key(scene)


def invalidate_content_key(scene: Any, *, settings: bool = False) -> None:
    """Drop the memoised key (and optionally the settings digest)."""
    scene.__dict__.pop(_KEY_ATTR, None)
    if settings:
        scene.__dict__.pop(_SETTINGS_ATTR, None)


# -- the journal --------------------------------------------------------------

#: ops that invalidate every tile regardless of geometry (see coherence.py)
GLOBAL_KINDS = frozenset({"light", "camera", "background", "max_ray_depth"})
#: ops that change the object list (BVH rebuild — leaf order may change)
STRUCTURAL_KINDS = frozenset({"add", "remove"})

#: per-type geometry attribute whitelists (material is allowed everywhere)
_GEOMETRY_ATTRS = {
    Sphere: frozenset({"center", "radius"}),
    Triangle: frozenset({"v0", "v1", "v2"}),
    Plane: frozenset({"point", "normal"}),
}
_VECTOR_ATTRS = frozenset({"center", "point", "normal", "v0", "v1", "v2"})
_LIGHT_ATTRS = frozenset({"position", "color", "intensity"})


@dataclass(frozen=True)
class EditOp:
    """One applied delta.  Picklable and self-contained for worker replay.

    ``kind``:

    * ``"update"`` — primitive attribute changes (``target`` = primitive_id,
      ``attrs`` = (name, value) pairs).  ``geometry`` marks shape changes;
      for bounded geometry the pre/post AABBs are captured (as
      ``((min…), (max…))`` tuples) for the dirty-tile planner.
    * ``"add"`` / ``"remove"`` — object-list changes (``payload`` carries the
      added primitive; ``target`` names the removed one).
    * ``"light"`` — light attribute changes (``target`` = light index).
    * ``"camera"`` / ``"background"`` / ``"max_ray_depth"`` — global settings
      (``payload`` carries the new value).
    """

    kind: str
    target: Optional[int] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()
    payload: Any = None
    geometry: bool = False
    unbounded: bool = False
    old_box: Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]] = None
    new_box: Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]] = None


@dataclass(frozen=True)
class EditEntry:
    """All ops of one ``commit()``, stamped with the epoch it produced."""

    epoch: int
    ops: Tuple[EditOp, ...]


class MutationJournal:
    """Bounded log of :class:`EditEntry` objects, ordered by epoch.

    ``entries_since(epoch)`` returns the entries a reader at ``epoch`` must
    replay to catch up — or ``None`` when the bounded log no longer reaches
    back that far (the reader must resynchronise from scratch).

    >>> j = MutationJournal(capacity=2)
    >>> for e in range(1, 4):
    ...     j.record(EditEntry(e, ()))
    >>> [entry.epoch for entry in j.entries_since(1)]
    [2, 3]
    >>> j.entries_since(0) is None  # epoch-1 entry fell off the log
    True
    >>> j.entries_since(3)
    []
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[EditEntry] = deque(maxlen=capacity)

    def record(self, entry: EditEntry) -> None:
        if self._entries and entry.epoch <= self._entries[-1].epoch:
            raise ValueError(
                f"journal epochs must increase: got {entry.epoch} after "
                f"{self._entries[-1].epoch}"
            )
        self._entries.append(entry)

    @property
    def latest_epoch(self) -> int:
        return self._entries[-1].epoch if self._entries else 0

    def entries_since(self, epoch: int) -> Optional[List[EditEntry]]:
        entries = [entry for entry in self._entries if entry.epoch > epoch]
        if entries and entries[0].epoch != epoch + 1:
            return None  # the log has been trimmed past the reader's epoch
        if not entries and self._entries and self._entries[-1].epoch > epoch:
            return None  # reader is behind but everything newer was trimmed
        return entries

    def __len__(self) -> int:
        return len(self._entries)


# -- applying ops -------------------------------------------------------------


def _prims_by_id(scene: Any) -> Dict[int, Primitive]:
    cached = getattr(scene, "_repro_prims_by_id", None)
    if cached is None or len(cached) != len(scene.objects):
        cached = {obj.primitive_id: obj for obj in scene.objects}
        scene._repro_prims_by_id = cached
    return cached


def _coerce(prim: Primitive, name: str, value: Any) -> Any:
    if name in _VECTOR_ATTRS:
        value = np.asarray(value, dtype=np.float64)
        if name == "normal":
            value = normalize(value)
        return value
    if name == "radius":
        value = float(value)
        if value <= 0.0:
            raise ValueError("sphere radius must be positive")
        return value
    if name == "material":
        if not isinstance(value, Material):
            raise TypeError(f"material must be a Material, got {type(value).__name__}")
        return value
    raise ValueError(f"{type(prim).__name__} has no editable attribute {name!r}")


def _apply_update(prim: Primitive, attrs: Sequence[Tuple[str, Any]]) -> None:
    for name, value in attrs:
        setattr(prim, name, _coerce(prim, name, value))
    if isinstance(prim, Triangle) and any(n in ("v0", "v1", "v2") for n, _ in attrs):
        prim._normal = normalize(cross(prim.v1 - prim.v0, prim.v2 - prim.v0))


def _apply_ops(scene: Any, ops: Sequence[EditOp]) -> Dict[str, bool]:
    """Mutate ``scene`` per ``ops``; return which cache classes were hit.

    Shared by the committing editor (parent process) and by worker replay
    (:func:`apply_edits`): both sides must land on byte-identical scene
    state, so every conversion lives here.
    """
    flags = {"geometry": False, "material": False, "structural": False, "settings": False}
    prims = _prims_by_id(scene)
    for op in ops:
        if op.kind == "update":
            prim = prims.get(op.target)
            if prim is None:
                raise KeyError(f"unknown primitive id {op.target} in edit op")
            _apply_update(prim, op.attrs)
            if op.geometry:
                flags["geometry"] = True
            else:
                flags["material"] = True
        elif op.kind == "add":
            scene.objects.append(op.payload)
            prims[op.payload.primitive_id] = op.payload
            flags["structural"] = True
        elif op.kind == "remove":
            prim = prims.pop(op.target, None)
            if prim is None:
                raise KeyError(f"unknown primitive id {op.target} in remove op")
            scene.objects.remove(prim)
            flags["structural"] = True
        elif op.kind == "light":
            light = scene.lights[op.target]
            for name, value in op.attrs:
                if name not in _LIGHT_ATTRS:
                    raise ValueError(f"Light has no editable attribute {name!r}")
                if name == "intensity":
                    setattr(light, name, float(value))
                else:
                    setattr(light, name, np.asarray(value, dtype=np.float64))
            flags["settings"] = True
        elif op.kind == "camera":
            scene.camera = op.payload
            flags["settings"] = True
        elif op.kind == "background":
            scene.background = np.asarray(op.payload, dtype=np.float64)
            flags["settings"] = True
        elif op.kind == "max_ray_depth":
            scene.max_ray_depth = int(op.payload)
            flags["settings"] = True
        else:  # pragma: no cover - guarded by SceneEditor
            raise ValueError(f"unknown edit op kind {op.kind!r}")
    return flags


def _invalidate_caches(scene: Any, flags: Dict[str, bool], ops: Sequence[EditOp]) -> None:
    """Drop exactly the derived state the applied ops made stale."""
    if flags["structural"]:
        scene._index = None  # full rebuild (leaf order may change)
        scene._packet_data = None
        scene._flat_index = None
        digests = getattr(scene, _DIGEST_ATTR, None)
        if digests is not None:
            for op in ops:
                if op.kind == "add":
                    digests[op.payload.primitive_id] = _object_digest(op.payload)
                elif op.kind == "remove":
                    digests.pop(op.target, None)
    if flags["geometry"]:
        # moved bounded primitives refit in place (leaf order preserved);
        # the compiled flat BVH holds SoA geometry copies, so it must go
        scene._flat_index = None
        if not flags["structural"] and isinstance(scene._index, BVH):
            prims = _prims_by_id(scene)
            moved = [
                prims[op.target]
                for op in ops
                if op.kind == "update" and op.geometry and not op.unbounded
            ]
            if moved:
                scene._index.refit(moved)
    if flags["material"]:
        scene._packet_data = None  # packet material arrays are stale
    if flags["geometry"] or flags["material"]:
        digests = getattr(scene, _DIGEST_ATTR, None)
        if digests is not None:
            prims = _prims_by_id(scene)
            for op in ops:
                if op.kind == "update":
                    digests[op.target] = _object_digest(prims[op.target])
    invalidate_content_key(scene, settings=flags["settings"])


def apply_edits(scene: Any, entries: Sequence[EditEntry]) -> int:
    """Replay journal entries onto a (possibly stale) scene copy.

    Idempotent: entries at or below ``scene.edit_epoch`` are skipped, so a
    forked worker may receive the same entries once per dirty section and
    apply them exactly once.  Returns the number of entries applied.
    """
    applied = 0
    for entry in sorted(entries, key=lambda e: e.epoch):
        if entry.epoch <= getattr(scene, "edit_epoch", 0):
            continue
        flags = _apply_ops(scene, entry.ops)
        _invalidate_caches(scene, flags, entry.ops)
        scene.edit_epoch = entry.epoch
        applied += 1
    return applied


# -- the editor ---------------------------------------------------------------


class SceneEditor:
    """Staged scene edits, applied atomically by :meth:`commit`.

    Obtained from :meth:`Scene.begin_edit
    <repro.raytracer.scene.Scene.begin_edit>`.  Every mutator validates
    eagerly (unknown attributes, bad radii, foreign primitives raise at call
    time), but nothing touches the scene until :meth:`commit` — an aborted
    editor leaves the scene byte-identical.
    """

    def __init__(self, scene: Any):
        self._scene = scene
        self._intents: List[EditOp] = []
        self._active = True

    # -- staging -----------------------------------------------------------
    def _check_active(self) -> None:
        if not self._active:
            raise RuntimeError("editor already committed or aborted")

    def update(self, primitive: Primitive, **attrs: Any) -> None:
        """Stage attribute changes on one primitive already in the scene."""
        self._check_active()
        if not attrs:
            raise ValueError("update() needs at least one attribute")
        if primitive.primitive_id not in _prims_by_id(self._scene):
            raise KeyError("primitive is not part of this scene")
        allowed = _GEOMETRY_ATTRS.get(type(primitive), frozenset())
        geometry = False
        for name, value in attrs.items():
            if name in allowed:
                geometry = True
                _coerce(primitive, name, value)  # validate only
            elif name != "material":
                raise ValueError(
                    f"{type(primitive).__name__} has no editable attribute {name!r}"
                )
            else:
                _coerce(primitive, name, value)
        self._intents.append(
            EditOp(
                kind="update",
                target=primitive.primitive_id,
                attrs=tuple(sorted(attrs.items())),
                geometry=geometry,
                unbounded=not primitive.is_bounded,
            )
        )

    def add(self, primitive: Primitive) -> None:
        """Stage adding a new primitive (dirties every tile: BVH rebuild)."""
        self._check_active()
        if not isinstance(primitive, Primitive):
            raise TypeError("add() takes a Primitive")
        self._intents.append(EditOp(kind="add", payload=primitive))

    def remove(self, primitive: Primitive) -> None:
        """Stage removing a primitive (dirties every tile: BVH rebuild)."""
        self._check_active()
        if primitive.primitive_id not in _prims_by_id(self._scene):
            raise KeyError("primitive is not part of this scene")
        self._intents.append(EditOp(kind="remove", target=primitive.primitive_id))

    def set_light(self, index: int, **attrs: Any) -> None:
        """Stage light changes (position/color/intensity); dirties everything."""
        self._check_active()
        if not 0 <= index < len(self._scene.lights):
            raise IndexError(f"light index {index} out of range")
        if not attrs:
            raise ValueError("set_light() needs at least one attribute")
        for name in attrs:
            if name not in _LIGHT_ATTRS:
                raise ValueError(f"Light has no editable attribute {name!r}")
        self._intents.append(
            EditOp(kind="light", target=index, attrs=tuple(sorted(attrs.items())))
        )

    def set_camera(self, camera: Any) -> None:
        """Stage a camera change; dirties everything."""
        self._check_active()
        self._intents.append(EditOp(kind="camera", payload=camera))

    def set_background(self, color: Any) -> None:
        self._check_active()
        self._intents.append(EditOp(kind="background", payload=color))

    def set_max_ray_depth(self, depth: int) -> None:
        self._check_active()
        if int(depth) < 0:
            raise ValueError("max_ray_depth must be >= 0")
        self._intents.append(EditOp(kind="max_ray_depth", payload=int(depth)))

    # -- terminal ----------------------------------------------------------
    def abort(self) -> None:
        """Discard every staged intent; the scene is untouched."""
        self._check_active()
        self._active = False
        self._intents = []

    def commit(self) -> int:
        """Apply all staged edits atomically; returns the new edit epoch.

        Captures pre/post AABBs for moved bounded primitives (the dirty-tile
        planner's expansion test), refits/rebuilds the acceleration index,
        updates the content-key memo in O(changed objects) and appends one
        :class:`EditEntry` to ``scene.journal``.
        """
        self._check_active()
        self._active = False
        scene = self._scene
        if not self._intents:
            return scene.edit_epoch
        prims = _prims_by_id(scene)
        # capture pre-edit boxes for bounded geometry updates
        old_boxes: Dict[int, Tuple] = {}
        for op in self._intents:
            if op.kind == "update" and op.geometry and not op.unbounded:
                box = prims[op.target].bounding_box()
                old_boxes[op.target] = (tuple(box.minimum), tuple(box.maximum))
        flags = _apply_ops(scene, self._intents)
        ops: List[EditOp] = []
        for op in self._intents:
            if op.target in old_boxes and op.kind == "update":
                box = prims[op.target].bounding_box()
                op = replace(
                    op,
                    old_box=old_boxes[op.target],
                    new_box=(tuple(box.minimum), tuple(box.maximum)),
                )
            ops.append(op)
        _invalidate_caches(scene, flags, ops)
        scene.edit_epoch += 1
        if scene.journal is None:
            scene.journal = MutationJournal()
        scene.journal.record(EditEntry(scene.edit_epoch, tuple(ops)))
        self._intents = []
        return scene.edit_epoch
