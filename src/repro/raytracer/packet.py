"""NumPy ray-packet tracing: the vectorized inner loop of the solver box.

The scalar path of :mod:`repro.raytracer.tracer` follows Algorithms 1 and 2
of the paper one ray at a time, which makes every backend — threaded,
process, simulated — interpreter-bound rather than coordination-bound.  This
module renders whole image sections as *packets*:

* the camera emits all primary rays of a section as ``(n, 3)`` arrays
  (:meth:`~repro.raytracer.camera.Camera.primary_ray_block`);
* the BVH is traversed once per packet with masked active-ray index sets
  (:meth:`~repro.raytracer.bvh.BVH.intersect_packet`), testing whole ray
  subsets against each node box and leaf primitive with NumPy kernels
  (scalar fallback per leaf for primitives without a vectorized kernel);
* direct lighting is shaded for the whole packet at once
  (:func:`repro.raytracer.shading.shade_block`);
* secondary rays (reflection, refraction) are gathered into smaller packets
  and traced recursively, so the whole image is rendered without a single
  per-pixel Python loop.

Every kernel reproduces the scalar arithmetic operation-for-operation, so
the packet image matches the scalar image to ``atol=1e-9`` (the conformance
tests pin this); the scalar path remains the correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Tuple

import numpy as np

from repro.raytracer.geometry.primitives import Primitive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.raytracer.scene import Scene
    from repro.raytracer.tracer import RayTracer

__all__ = [
    "ScenePacketData",
    "scene_packet_data",
    "cast_packet",
    "occluded_packet",
    "trace_packet",
]


@dataclass
class ScenePacketData:
    """Per-primitive material arrays for packet shading.

    Rows are aligned with the hit indices produced by :func:`cast_packet`:
    the first ``len(index.packet_primitives)`` rows are the indexed (bounded)
    primitives in BVH leaf order, followed by the scene's unbounded
    primitives.  Cached on the scene and rebuilt whenever the acceleration
    index is (object identity ties the two together).
    """

    index: Any
    #: the index's packet_primitives list object at build time plus its
    #: length — together they detect in-place index mutation (BVH.insert
    #: swaps the list object, BruteForceIndex.insert grows it in place)
    indexed: List[Primitive]
    num_indexed: int
    primitives: List[Primitive]
    color: np.ndarray
    ambient: np.ndarray
    diffuse: np.ndarray
    specular: np.ndarray
    shininess: np.ndarray
    reflectivity: np.ndarray
    transparency: np.ndarray
    ior: np.ndarray


def scene_packet_data(scene: "Scene") -> ScenePacketData:
    """The (cached) packet arrays of ``scene``; rebuilds after index changes.

    Staleness is detected three ways: a rebuilt index object
    (``Scene.add``), a re-derived leaf list on the same BVH (in-place
    ``BVH.insert``), or a grown primitive list on the same brute-force index
    (in-place ``BruteForceIndex.insert``).

    **Invalidation contract**: these rules only observe *structural* changes
    to the index.  Mutating a primitive's :class:`Material` in place (or a
    primitive's geometry) is invisible to them — the cached material arrays
    (and the flat-BVH parameter arrays, which share the same staleness
    rules) would keep serving stale values.  Call
    :meth:`Scene.invalidate_packet_cache` after any in-place mutation to
    drop both caches explicitly.
    """
    index = scene.index  # building the index also populates the unbounded list
    cached = getattr(scene, "_packet_data", None)
    if (
        cached is not None
        and cached.index is index
        and cached.indexed is index.packet_primitives
        and cached.num_indexed == len(cached.indexed)
    ):
        return cached
    indexed = index.packet_primitives
    primitives = list(indexed) + list(scene.unbounded_objects)
    materials = [p.material for p in primitives]
    data = ScenePacketData(
        index=index,
        indexed=indexed,
        num_indexed=len(indexed),
        primitives=primitives,
        color=np.array([m.color for m in materials], dtype=np.float64).reshape(
            len(materials), 3
        ),
        ambient=np.array([m.ambient for m in materials], dtype=np.float64),
        diffuse=np.array([m.diffuse for m in materials], dtype=np.float64),
        specular=np.array([m.specular for m in materials], dtype=np.float64),
        shininess=np.array([m.shininess for m in materials], dtype=np.float64),
        reflectivity=np.array([m.reflectivity for m in materials], dtype=np.float64),
        transparency=np.array([m.transparency for m in materials], dtype=np.float64),
        ior=np.array([m.ior for m in materials], dtype=np.float64),
    )
    scene._packet_data = data
    return data


def cast_packet(
    scene: "Scene", origins: np.ndarray, directions: np.ndarray, index: Any = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Closest hit of every ray in the packet (the packet ``Cast`` step).

    Returns ``(indices, t)`` with indices into
    :attr:`ScenePacketData.primitives` (``-1``/``np.inf`` for misses).
    Mirrors :meth:`RayTracer.cast`: BVH first, then the unbounded primitives
    bounded by each ray's current best hit.  ``index`` selects the traversal
    structure (default: ``scene.index``); the fused render path passes the
    scene's compiled :class:`~repro.raytracer.flatbvh.FlatBVH`, whose hit
    indices refer to the same leaf-ordered primitive rows.
    """
    if index is None:
        index = scene.index
    indices, t = index.intersect_packet(origins, directions, t_min=1e-6)
    base = len(index.packet_primitives)
    for offset, obj in enumerate(scene.unbounded_objects):
        t_obj = obj.intersect_block(origins, directions, 1e-6, t)
        closer = t_obj < t
        t[closer] = t_obj[closer]
        indices[closer] = base + offset
    return indices, t


def occluded_packet(
    scene: "Scene",
    origins: np.ndarray,
    directions: np.ndarray,
    max_distance: np.ndarray,
    index: Any = None,
) -> np.ndarray:
    """Vectorized :meth:`RayTracer.occluded` for a packet of shadow rays."""
    if index is None:
        index = scene.index
    occluded = index.any_hit_packet(origins, directions, 1e-6, max_distance)
    tmax = np.broadcast_to(
        np.asarray(max_distance, dtype=np.float64), (origins.shape[0],)
    )
    for obj in scene.unbounded_objects:
        active = (~occluded).nonzero()[0]
        if active.size == 0:
            break
        t = obj.intersect_block(origins[active], directions[active], 1e-6, tmax[active])
        occluded[active[np.isfinite(t)]] = True
    return occluded


def trace_packet(
    tracer: "RayTracer", origins: np.ndarray, directions: np.ndarray, depth: int = 0
) -> np.ndarray:
    """Vectorized :meth:`RayTracer.trace`: colours for a whole ray packet.

    ``directions`` must be normalized (as :meth:`Camera.primary_ray_block`
    and the secondary-ray spawning in ``shade_block`` guarantee).
    """
    scene = tracer.scene
    n = origins.shape[0]
    if n == 0:
        return np.zeros((0, 3), dtype=np.float64)
    colors = np.repeat(scene.background[None, :], n, axis=0)
    if depth >= scene.max_ray_depth:
        return colors
    tracer.rays_cast += n
    touch = getattr(tracer, "touch", None)
    if touch is not None and depth > 0:
        # the tile spawned secondary rays that were actually traced: any
        # geometry edit can change what they hit (set even when all miss)
        touch.secondary = True
    data = scene_packet_data(scene)
    indices, t = cast_packet(
        scene, origins, directions, index=getattr(tracer, "_traversal_index", None)
    )
    hits = (indices >= 0).nonzero()[0]
    if touch is not None and hits.size:
        touch.note_packet(data, indices, t, origins, directions, hits, depth)
    if hits.size == 0:
        return colors
    from repro.raytracer.shading import shade_block

    colors[hits] = shade_block(
        tracer, data, origins[hits], directions[hits], indices[hits], t[hits], depth
    )
    return colors
