"""``mpiexec``-style launching of rank programs on a simulated cluster.

:func:`run_mpi` takes a *rank program* — a generator function called as
``program(comm, **kwargs)`` — instantiates it once per rank, places the ranks
onto cluster nodes and runs the simulation to completion.  The result records
the per-rank return values, the makespan (simulated wall-clock of the whole
job) and the cluster metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.cluster.sim import SimulationError
from repro.cluster.topology import Cluster
from repro.mpisim.communicator import Communicator
from repro.mpisim.messages import Mailbox

__all__ = ["MPIJob", "run_mpi", "round_robin_placement", "block_placement"]

RankProgram = Callable[..., Generator]


def round_robin_placement(num_ranks: int, num_nodes: int) -> List[int]:
    """Place rank ``r`` on node ``r % num_nodes`` (MPICH default round-robin)."""
    if num_nodes < 1:
        raise SimulationError("placement requires at least one node")
    return [rank % num_nodes for rank in range(num_ranks)]


def block_placement(num_ranks: int, num_nodes: int) -> List[int]:
    """Fill nodes in blocks: ranks 0..k-1 on node 0, k..2k-1 on node 1, ..."""
    if num_nodes < 1:
        raise SimulationError("placement requires at least one node")
    per_node = max(1, (num_ranks + num_nodes - 1) // num_nodes)
    return [min(rank // per_node, num_nodes - 1) for rank in range(num_ranks)]


@dataclass
class MPIJob:
    """Result of one simulated MPI job."""

    num_ranks: int
    placement: List[int]
    results: List[Any]
    makespan: float
    cluster: Cluster
    per_rank_stats: List[Dict[str, int]] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(stats["sent"] for stats in self.per_rank_stats)

    @property
    def total_bytes(self) -> int:
        return self.cluster.network.total_bytes


def run_mpi(
    cluster: Cluster,
    num_ranks: int,
    program: RankProgram,
    placement: Optional[Sequence[int]] = None,
    program_kwargs: Optional[Dict[str, Any]] = None,
    overhead_per_message: float = 0.0,
) -> MPIJob:
    """Run ``program`` as ``num_ranks`` simulated MPI processes on ``cluster``.

    Parameters
    ----------
    cluster:
        The simulated cluster to run on (its simulator must be fresh or at
        least idle; the job runs it to completion).
    num_ranks:
        Number of MPI ranks to launch.
    program:
        Generator function ``program(comm, **program_kwargs)``.
    placement:
        Node id per rank; defaults to round-robin over the cluster's nodes.
    overhead_per_message:
        Extra per-message software overhead charged on every send (used to
        model runtime-system costs in the ablation benches).
    """
    if num_ranks < 1:
        raise SimulationError("an MPI job needs at least one rank")
    if placement is None:
        placement = round_robin_placement(num_ranks, cluster.num_nodes)
    placement = list(placement)
    if len(placement) != num_ranks:
        raise SimulationError("placement must list exactly one node per rank")
    for node_id in placement:
        if node_id < 0 or node_id >= cluster.num_nodes:
            raise SimulationError(f"placement references unknown node {node_id}")

    sim = cluster.sim
    start_time = sim.now
    mailboxes = [Mailbox(sim, rank) for rank in range(num_ranks)]
    communicators = [
        Communicator(
            cluster,
            rank,
            num_ranks,
            placement,
            mailboxes,
            overhead_per_message=overhead_per_message,
        )
        for rank in range(num_ranks)
    ]
    kwargs = dict(program_kwargs or {})
    processes = [
        sim.process(program(communicators[rank], **kwargs), name=f"rank{rank}")
        for rank in range(num_ranks)
    ]
    sim.run()

    unfinished = [p.name for p in processes if not p.triggered]
    if unfinished:
        raise SimulationError(
            f"MPI job deadlocked; unfinished ranks: {', '.join(unfinished)}"
        )
    failures = [p for p in processes if not p.ok]
    if failures:
        raise failures[0].value

    cluster.collect_node_metrics()
    return MPIJob(
        num_ranks=num_ranks,
        placement=placement,
        results=[p.value for p in processes],
        makespan=sim.now - start_time,
        cluster=cluster,
        per_rank_stats=[
            {"sent": comm.sent_messages, "received": comm.received_messages}
            for comm in communicators
        ],
    )
