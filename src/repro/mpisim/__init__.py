"""Simulated MPI substrate.

The original Distributed S-Net runtime and the paper's baseline ray tracer
are built on MPI.  This package provides an MPI-like message-passing layer
whose processes are discrete-event simulation processes and whose transfers
consume simulated network time on the :mod:`repro.cluster` substrate:

* :mod:`repro.mpisim.datatypes` -- payload size estimation,
* :mod:`repro.mpisim.messages` -- message envelopes, matching, mailboxes,
* :mod:`repro.mpisim.communicator` -- point-to-point and collective
  operations (send/recv/isend/irecv, bcast, scatter, gather, reduce,
  allgather, barrier),
* :mod:`repro.mpisim.launcher` -- ``mpiexec``-style launching of rank
  programs on a cluster.

Programs are written as generator functions following the mpi4py idioms (see
the mpi4py tutorial): lower-case ``send``/``recv`` move arbitrary Python
objects.  Because everything runs in simulated time, an "MPI program" here is
a coroutine that ``yield from``-delegates to the communicator methods.
"""

from repro.mpisim.datatypes import payload_bytes
from repro.mpisim.messages import Message, Mailbox, ANY_SOURCE, ANY_TAG
from repro.mpisim.communicator import Communicator, Request
from repro.mpisim.launcher import MPIJob, run_mpi, round_robin_placement, block_placement

__all__ = [
    "payload_bytes",
    "Message",
    "Mailbox",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "MPIJob",
    "run_mpi",
    "round_robin_placement",
    "block_placement",
]
