"""Simulated MPI communicator: point-to-point and collective operations.

A :class:`Communicator` is handed to every rank program by the launcher.  Its
methods are generator fragments used with ``yield from`` inside the rank's
simulation process, e.g.::

    def worker(comm):
        data = yield from comm.recv(source=0, tag=11)
        yield from comm.compute(len(data) * 0.001)
        yield from comm.send(result, dest=0, tag=12)

Point-to-point semantics follow MPI's standard mode: ``send`` completes once
the payload has been pushed through the (simulated) network and delivered to
the destination mailbox; ``recv`` blocks until a matching message exists.
Collectives are implemented on top of point-to-point with the usual
root-based algorithms (linear fan-out/fan-in, which is what MPICH-1 over
100 Mbit Ethernet effectively did for small communicators).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from repro.cluster.sim import Event, SimulationError, Simulator
from repro.cluster.topology import Cluster
from repro.mpisim.datatypes import payload_bytes
from repro.mpisim.messages import ANY_SOURCE, ANY_TAG, Mailbox, Message

__all__ = ["Request", "Communicator"]


class Request:
    """Handle for a non-blocking operation (:meth:`Communicator.isend`/``irecv``)."""

    def __init__(self, sim: Simulator, event: Event, kind: str):
        self._sim = sim
        self._event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        return self._event.triggered

    def test(self) -> bool:
        """Non-blocking completion check."""
        return self._event.triggered

    def wait(self) -> Generator:
        """Process fragment: wait for completion and return the result."""
        value = yield self._event
        if self.kind == "recv":
            assert isinstance(value, Message)
            return value.payload
        return value


class Communicator:
    """One rank's view of the communicator (``COMM_WORLD`` equivalent)."""

    def __init__(
        self,
        cluster: Cluster,
        rank: int,
        size: int,
        rank_to_node: Sequence[int],
        mailboxes: Sequence[Mailbox],
        overhead_per_message: float = 0.0,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.rank = rank
        self.size = size
        self._rank_to_node = list(rank_to_node)
        self._mailboxes = mailboxes
        self.overhead_per_message = overhead_per_message
        self.sent_messages = 0
        self.received_messages = 0

    # -- introspection (mpi4py naming kept for familiarity) -----------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def node_of(self, rank: int) -> int:
        if rank < 0 or rank >= self.size:
            raise SimulationError(f"rank {rank} outside communicator of size {self.size}")
        return self._rank_to_node[rank]

    @property
    def node_id(self) -> int:
        return self.node_of(self.rank)

    # -- local compute --------------------------------------------------------
    def compute(self, work: float) -> Generator:
        """Run ``work`` reference-CPU seconds on this rank's node."""
        yield from self.cluster.compute_on(self.node_id, work)

    # -- point-to-point ---------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        """Blocking standard-mode send."""
        if dest < 0 or dest >= self.size:
            raise SimulationError(f"send to invalid rank {dest}")
        nbytes = payload_bytes(obj)
        sent_at = self.sim.now
        if self.overhead_per_message > 0:
            yield self.sim.timeout(self.overhead_per_message)
        yield from self.cluster.send(self.node_id, self.node_of(dest), nbytes)
        message = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            payload=obj,
            nbytes=nbytes,
            sent_at=sent_at,
            delivered_at=self.sim.now,
        )
        self._mailboxes[dest].deliver(message)
        self.sent_messages += 1

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; returns a :class:`Request`."""
        process = self.sim.process(self.send(obj, dest, tag), name=f"isend-{self.rank}->{dest}")
        return Request(self.sim, process, "send")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the payload."""
        message = yield self._mailboxes[self.rank].receive(source, tag)
        self.received_messages += 1
        return message.payload

    def recv_message(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive returning the full :class:`Message` envelope."""
        message = yield self._mailboxes[self.rank].receive(source, tag)
        self.received_messages += 1
        return message

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` yields the payload."""
        event = self._mailboxes[self.rank].receive(source, tag)
        return Request(self.sim, event, "recv")

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already queued locally."""
        return self._mailboxes[self.rank].probe(source, tag) is not None

    # -- collectives ---------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Generator:
        """Broadcast from ``root``; every rank returns the broadcast value."""
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    yield from self.send(obj, dest, tag=_BCAST_TAG)
            return obj
        value = yield from self.recv(source=root, tag=_BCAST_TAG)
        return value

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Generator:
        """Scatter one element of ``values`` to each rank."""
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise SimulationError(
                    "scatter at root requires one value per rank"
                )
            for dest in range(self.size):
                if dest != root:
                    yield from self.send(values[dest], dest, tag=_SCATTER_TAG)
            return values[root]
        value = yield from self.recv(source=root, tag=_SCATTER_TAG)
        return value

    def gather(self, value: Any, root: int = 0) -> Generator:
        """Gather one value per rank at ``root`` (others return ``None``)."""
        if self.rank == root:
            results: List[Any] = [None] * self.size
            results[root] = value
            for _ in range(self.size - 1):
                message = yield from self.recv_message(source=ANY_SOURCE, tag=_GATHER_TAG)
                results[message.source] = message.payload
            return results
        yield from self.send(value, root, tag=_GATHER_TAG)
        return None

    def allgather(self, value: Any) -> Generator:
        """Gather at rank 0, then broadcast the full list to everyone."""
        gathered = yield from self.gather(value, root=0)
        result = yield from self.bcast(gathered, root=0)
        return result

    def reduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b, root: int = 0
    ) -> Generator:
        """Reduce values from all ranks at ``root`` with the binary ``op``."""
        gathered = yield from self.gather(value, root=root)
        if self.rank != root:
            return None
        assert gathered is not None
        accumulator = gathered[0]
        for item in gathered[1:]:
            accumulator = op(accumulator, item)
        return accumulator

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Generator:
        reduced = yield from self.reduce(value, op=op, root=0)
        result = yield from self.bcast(reduced, root=0)
        return result

    def barrier(self) -> Generator:
        """Synchronise all ranks (gather + broadcast of a token)."""
        yield from self.gather(None, root=0)
        yield from self.bcast(None, root=0)

    def __repr__(self) -> str:
        return f"<Communicator rank={self.rank}/{self.size} node={self.node_id}>"


_BCAST_TAG = -101
_SCATTER_TAG = -102
_GATHER_TAG = -103
