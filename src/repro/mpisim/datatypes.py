"""Payload size estimation for simulated message transfers.

The simulated network charges time proportionally to message size, so we
need a byte-size estimate for arbitrary Python payloads.  The rules mirror
what an MPI + pickle transport would move over the wire:

* numpy arrays: ``nbytes``;
* ``bytes``/``bytearray``/``str``: their length;
* S-Net records: their :meth:`~repro.snet.records.Record.payload_size`;
* objects exposing ``payload_size()`` or ``nbytes``: that value;
* containers: the sum of their elements plus a small per-element overhead;
* everything else: a small constant (pickled scalar/handle).
"""

from __future__ import annotations

from typing import Any

__all__ = ["payload_bytes", "SCALAR_BYTES", "CONTAINER_ITEM_OVERHEAD"]

#: assumed wire size of a scalar / small opaque object
SCALAR_BYTES = 64
#: pickling overhead charged per container element
CONTAINER_ITEM_OVERHEAD = 8


def payload_bytes(obj: Any) -> int:
    """Estimate the number of bytes ``obj`` occupies on the wire."""
    if obj is None:
        return 8
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    sizer = getattr(obj, "payload_size", None)
    if callable(sizer):
        return int(sizer())
    if isinstance(obj, dict):
        return sum(
            payload_bytes(k) + payload_bytes(v) + CONTAINER_ITEM_OVERHEAD
            for k, v in obj.items()
        ) + SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_bytes(item) + CONTAINER_ITEM_OVERHEAD for item in obj) + SCALAR_BYTES
    return SCALAR_BYTES
