"""Message envelopes, matching rules and per-rank mailboxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple
from collections import deque

from repro.cluster.sim import Event, SimulationError, Simulator

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox"]

#: wildcard source rank (like ``MPI.ANY_SOURCE``)
ANY_SOURCE = -1
#: wildcard message tag (like ``MPI.ANY_TAG``)
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """A delivered message envelope."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float

    def matches(self, source: int, tag: int) -> bool:
        """MPI matching: wildcards match anything."""
        if source != ANY_SOURCE and self.source != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True


class Mailbox:
    """The receive queue of one rank with MPI-style (source, tag) matching.

    Unmatched messages are kept in arrival order; pending receives are
    satisfied in posting order by the first matching message — the same
    non-overtaking guarantee MPI gives per (source, tag) channel.
    """

    def __init__(self, sim: Simulator, rank: int):
        self.sim = sim
        self.rank = rank
        self._messages: Deque[Message] = deque()
        self._pending: Deque[Tuple[Event, int, int]] = deque()
        self.delivered_count = 0

    def deliver(self, message: Message) -> None:
        """Called by the transport when a message arrives at this rank."""
        if message.dest != self.rank:
            raise SimulationError(
                f"message for rank {message.dest} delivered to mailbox {self.rank}"
            )
        self.delivered_count += 1
        # try to satisfy the oldest pending matching receive
        for index, (event, source, tag) in enumerate(self._pending):
            if message.matches(source, tag):
                del self._pending[index]
                event.succeed(message)
                return
        self._messages.append(message)

    def receive(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Return an event that fires with the next matching :class:`Message`."""
        for index, message in enumerate(self._messages):
            if message.matches(source, tag):
                del self._messages[index]
                event = Event(self.sim)
                event.succeed(message)
                return event
        event = Event(self.sim)
        self._pending.append((event, source, tag))
        return event

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Non-destructively check for a matching queued message."""
        for message in self._messages:
            if message.matches(source, tag):
                return message
        return None

    @property
    def queued(self) -> int:
        return len(self._messages)

    @property
    def pending_receives(self) -> int:
        return len(self._pending)
