"""Experiment harness regenerating the paper's evaluation (Figs. 5 and 6).

* :mod:`repro.bench.experiments` -- run one variant (MPI baseline, S-Net
  static, S-Net static 2 CPU, S-Net dynamic) on a simulated cluster and
  return its makespan plus statistics;
* :mod:`repro.bench.figures` -- the parameter sweeps behind Fig. 5 (token /
  task sweep under factoring and block scheduling) and Fig. 6 (scaling of
  all five variants over 1–8 nodes, plus the speed-up chart);
* :mod:`repro.bench.reporting` -- plain-text/CSV table rendering in the same
  layout as the paper's figures;
* :mod:`repro.bench.paper_data` -- the numbers read off the paper's Fig. 6,
  used by EXPERIMENTS.md and by the shape assertions in the benchmarks.
"""

from repro.bench.experiments import (
    ExperimentSettings,
    VariantResult,
    run_mpi_variant,
    run_snet_dynamic,
    run_snet_static,
    run_variant,
)
from repro.bench.figures import (
    Fig5Cell,
    fig5_sweep,
    fig6_runtimes,
    fig6_speedups,
    scheduling_example,
)
from repro.bench.reporting import format_fig5_table, format_fig6_table, to_csv
from repro.bench.paper_data import PAPER_FIG6_RUNTIMES, PAPER_FIG5_TOKEN_COUNTS

__all__ = [
    "ExperimentSettings",
    "VariantResult",
    "run_variant",
    "run_mpi_variant",
    "run_snet_static",
    "run_snet_dynamic",
    "Fig5Cell",
    "fig5_sweep",
    "fig6_runtimes",
    "fig6_speedups",
    "scheduling_example",
    "format_fig5_table",
    "format_fig6_table",
    "to_csv",
    "PAPER_FIG6_RUNTIMES",
    "PAPER_FIG5_TOKEN_COUNTS",
]
