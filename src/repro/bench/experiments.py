"""Running one evaluation variant on a simulated cluster.

Every experiment builds a fresh cluster of the paper's node type
(2 CPUs/node, 100 Mbit Ethernet), a :class:`ModelRenderBackend` over the
reference scene at 3000x3000, and runs one of the five variants:

============================  =====================================================
variant                        meaning
============================  =====================================================
``mpi``                        hand-written MPI fork/join, 1 process per node
``mpi_2proc``                  the same with 2 processes per node
``snet_static``                Fig. 2 network, one solver instance per node
``snet_static_2cpu``           Fig. 2 network with ``(solver!<cpu>)!@<node>``
``snet_dynamic``               Fig. 2 network with the Fig. 4 solver segment
============================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.apps.backends import ModelRenderBackend
from repro.apps.mpi_baseline import run_mpi_raytracer
from repro.apps.networks import (
    build_dynamic_network,
    build_static_2cpu_network,
    build_static_network,
)
from repro.apps.workloads import dynamic_input_records, initial_record
from repro.cluster.topology import Cluster, ClusterSpec
from repro.dsnet.config import DSNetConfig
from repro.dsnet.simruntime import SimulatedDSNetRuntime
from repro.raytracer.camera import Camera
from repro.raytracer.cost import CostParameters
from repro.raytracer.scene import Scene, paper_scene
from repro.scheduling.base import Scheduler
from repro.scheduling.block import BlockScheduler
from repro.scheduling.factoring import FactoringScheduler

__all__ = [
    "ExperimentSettings",
    "VariantResult",
    "run_variant",
    "run_mpi_variant",
    "run_snet_static",
    "run_snet_static_2cpu",
    "run_snet_dynamic",
    "VARIANTS",
]


@dataclass(frozen=True)
class ExperimentSettings:
    """Workload and substrate parameters shared by every experiment."""

    width: int = 3000
    height: int = 3000
    num_spheres: int = 300
    clustering: float = 0.45
    seed: int = 2010
    total_render_seconds: float = 630.0
    cpus_per_node: int = 2
    use_bvh: bool = True
    dsnet_config: DSNetConfig = field(default_factory=DSNetConfig.calibrated)

    def scene(self) -> Scene:
        return paper_scene(
            num_spheres=self.num_spheres,
            clustering=self.clustering,
            seed=self.seed,
            use_bvh=self.use_bvh,
        )

    def camera(self) -> Camera:
        return Camera(width=self.width, height=self.height)

    def backend(self, scheduler_tasks_hint: Optional[int] = None) -> ModelRenderBackend:
        return ModelRenderBackend(
            self.scene(),
            self.camera(),
            CostParameters(total_seconds=self.total_render_seconds),
        )

    def cluster(self, num_nodes: int) -> Cluster:
        return Cluster(
            ClusterSpec(num_nodes=num_nodes, cpus_per_node=self.cpus_per_node)
        )

    def with_overhead_scale(self, factor: float) -> "ExperimentSettings":
        return replace(self, dsnet_config=self.dsnet_config.scaled(factor))


@dataclass
class VariantResult:
    """Makespan and statistics of one variant run."""

    variant: str
    num_nodes: int
    runtime_seconds: float
    tasks: int
    tokens: Optional[int] = None
    scheduler: Optional[str] = None
    mean_utilisation: float = 0.0
    network_bytes: int = 0

    def speedup_against(self, other: "VariantResult") -> float:
        """Speed-up of this variant over ``other`` (>1 means this is faster)."""
        if self.runtime_seconds <= 0:
            return 0.0
        return other.runtime_seconds / self.runtime_seconds


def _mean_utilisation(cluster: Cluster, makespan: float) -> float:
    if makespan <= 0:
        return 0.0
    return sum(node.utilisation(makespan) for node in cluster.nodes) / len(cluster.nodes)


def run_mpi_variant(
    settings: ExperimentSettings, num_nodes: int, processes_per_node: int = 1
) -> VariantResult:
    """The MPI baseline on ``num_nodes`` nodes (Fig. 6 'MPI' / 'MPI 2 Proc/Node')."""
    cluster = settings.cluster(num_nodes)
    backend = settings.backend()
    result = run_mpi_raytracer(cluster, backend, processes_per_node=processes_per_node)
    name = "mpi" if processes_per_node == 1 else "mpi_2proc"
    return VariantResult(
        variant=name,
        num_nodes=num_nodes,
        runtime_seconds=result.makespan,
        tasks=num_nodes * processes_per_node,
        mean_utilisation=_mean_utilisation(cluster, result.makespan),
        network_bytes=cluster.network.total_bytes,
    )


def _run_snet(
    settings: ExperimentSettings,
    num_nodes: int,
    network_builder,
    inputs_builder,
    variant: str,
    tasks: int,
    tokens: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
) -> VariantResult:
    cluster = settings.cluster(num_nodes)
    backend = settings.backend()
    network = network_builder(backend, scheduler)
    runtime = SimulatedDSNetRuntime(cluster, settings.dsnet_config)
    sim_result = runtime.run(network, inputs_builder(backend))
    if not backend.saved_images:
        raise RuntimeError(
            f"variant {variant!r} finished without producing a picture "
            "(coordination bug: the merger never completed)"
        )
    return VariantResult(
        variant=variant,
        num_nodes=num_nodes,
        runtime_seconds=sim_result.makespan,
        tasks=tasks,
        tokens=tokens,
        scheduler=getattr(scheduler, "name", None),
        mean_utilisation=_mean_utilisation(cluster, sim_result.makespan),
        network_bytes=sim_result.network_bytes,
    )


def run_snet_static(
    settings: ExperimentSettings, num_nodes: int, tasks: Optional[int] = None
) -> VariantResult:
    """Fig. 2 static network: by default one task (section) per node."""
    tasks = tasks or num_nodes
    return _run_snet(
        settings,
        num_nodes,
        build_static_network,
        lambda backend: [initial_record(backend.scene, nodes=num_nodes, tasks=tasks)],
        "snet_static",
        tasks,
        scheduler=BlockScheduler(tasks),
    )


def run_snet_static_2cpu(
    settings: ExperimentSettings, num_nodes: int, tasks: Optional[int] = None
) -> VariantResult:
    """Static variant with two solver instances per node (two tasks per node)."""
    tasks = tasks or 2 * num_nodes
    return _run_snet(
        settings,
        num_nodes,
        build_static_2cpu_network,
        lambda backend: [initial_record(backend.scene, nodes=num_nodes, tasks=tasks)],
        "snet_static_2cpu",
        tasks,
        scheduler=BlockScheduler(tasks),
    )


def run_snet_dynamic(
    settings: ExperimentSettings,
    num_nodes: int,
    tasks: int,
    tokens: int,
    scheduling: str = "block",
) -> VariantResult:
    """The dynamically load-balanced variant with a task/token configuration."""
    if scheduling == "block":
        scheduler: Scheduler = BlockScheduler(tasks)
    elif scheduling == "factoring":
        scheduler = FactoringScheduler(num_tasks=tasks)
    else:
        raise ValueError(f"unknown scheduling strategy {scheduling!r}")
    return _run_snet(
        settings,
        num_nodes,
        build_dynamic_network,
        lambda backend: dynamic_input_records(
            backend.scene, nodes=num_nodes, tasks=tasks, tokens=tokens
        ),
        "snet_dynamic",
        tasks,
        tokens=tokens,
        scheduler=scheduler,
    )


def run_snet_best_dynamic(settings: ExperimentSettings, num_nodes: int) -> VariantResult:
    """The paper's "S-Net best dynamic": nodes*8 tasks, tasks/2 tokens, block."""
    tasks = num_nodes * 8
    tokens = max(1, tasks // 2)
    result = run_snet_dynamic(settings, num_nodes, tasks=tasks, tokens=tokens, scheduling="block")
    return replace_variant_name(result, "snet_best_dynamic")


def replace_variant_name(result: VariantResult, name: str) -> VariantResult:
    result.variant = name
    return result


#: registry used by :func:`run_variant` and the Fig. 6 sweep
VARIANTS = {
    "mpi": lambda settings, nodes: run_mpi_variant(settings, nodes, 1),
    "mpi_2proc": lambda settings, nodes: run_mpi_variant(settings, nodes, 2),
    "snet_static": run_snet_static,
    "snet_static_2cpu": run_snet_static_2cpu,
    "snet_best_dynamic": run_snet_best_dynamic,
}


def run_variant(
    settings: ExperimentSettings, variant: str, num_nodes: int
) -> VariantResult:
    """Run one of the five Fig. 6 variants by name."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}")
    return VARIANTS[variant](settings, num_nodes)
