"""Numbers reported in the paper, for side-by-side comparison.

Only Fig. 6 gives absolute values in the text/figure; Fig. 5 is published as
line charts without a data table, so for it we record the qualitative claims
made in Section V instead (best token count, worst configuration).
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "PAPER_FIG6_RUNTIMES",
    "PAPER_FIG6_NODE_COUNTS",
    "PAPER_FIG5_TASK_COUNTS",
    "PAPER_FIG5_TOKEN_COUNTS",
    "PAPER_SCENE_RESOLUTION",
]

#: node counts evaluated in Fig. 6
PAPER_FIG6_NODE_COUNTS = (1, 2, 4, 6, 8)

#: absolute runtimes in seconds from Fig. 6 (left), per variant and node count
PAPER_FIG6_RUNTIMES: Dict[str, Dict[int, float]] = {
    "snet_static": {1: 941.87, 2: 402.75, 4: 217.97, 6: 158.58, 8: 132.66},
    "snet_static_2cpu": {1: 829.74, 2: 329.14, 4: 204.23, 6: 143.33, 8: 121.99},
    "mpi": {1: 650.99, 2: 405.95, 4: 213.43, 6: 163.83, 8: 136.23},
    "mpi_2proc": {1: 401.80, 2: 211.77, 4: 139.00, 6: 105.61, 8: 87.01},
    "snet_best_dynamic": {1: 953.18, 2: 228.52, 4: 119.77, 6: 76.39, 8: 61.84},
}

#: task counts swept in Fig. 5
PAPER_FIG5_TASK_COUNTS = (8, 16, 32, 48, 64, 72)

#: token counts swept in Fig. 5
PAPER_FIG5_TOKEN_COUNTS = (8, 16, 32, 48, 64, 72)

#: the evaluation scene is 3000 x 3000 pixels
PAPER_SCENE_RESOLUTION = (3000, 3000)
