"""Parameter sweeps reproducing Figs. 5 and 6 and the Section V example."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.experiments import (
    ExperimentSettings,
    VariantResult,
    run_snet_dynamic,
    run_variant,
)
from repro.bench.paper_data import (
    PAPER_FIG5_TASK_COUNTS,
    PAPER_FIG5_TOKEN_COUNTS,
    PAPER_FIG6_NODE_COUNTS,
)
from repro.scheduling.factoring import FactoringScheduler

__all__ = [
    "Fig5Cell",
    "fig5_sweep",
    "fig6_runtimes",
    "fig6_speedups",
    "scheduling_example",
]


@dataclass(frozen=True)
class Fig5Cell:
    """One point of Fig. 5: a (tasks, tokens) configuration and its runtime."""

    tasks: int
    tokens: int
    runtime_seconds: float


def fig5_sweep(
    scheduling: str,
    settings: Optional[ExperimentSettings] = None,
    num_nodes: int = 8,
    task_counts: Sequence[int] = PAPER_FIG5_TASK_COUNTS,
    token_counts: Sequence[int] = PAPER_FIG5_TOKEN_COUNTS,
) -> List[Fig5Cell]:
    """Reproduce one half of Fig. 5 (``scheduling`` is 'factoring' or 'block').

    The paper sweeps tasks and tokens over {8, 16, 32, 48, 64, 72} on 8
    nodes; configurations with more tokens than tasks are meaningless (a
    token is an initially assigned task) and are skipped, as in the paper's
    plots where each task series starts at its own task count.
    """
    settings = settings or ExperimentSettings()
    cells: List[Fig5Cell] = []
    for tasks in task_counts:
        for tokens in token_counts:
            if tokens > tasks:
                continue
            result = run_snet_dynamic(
                settings, num_nodes, tasks=tasks, tokens=tokens, scheduling=scheduling
            )
            cells.append(Fig5Cell(tasks=tasks, tokens=tokens, runtime_seconds=result.runtime_seconds))
    return cells


def fig6_runtimes(
    settings: Optional[ExperimentSettings] = None,
    node_counts: Sequence[int] = PAPER_FIG6_NODE_COUNTS,
    variants: Sequence[str] = (
        "snet_static",
        "snet_static_2cpu",
        "mpi",
        "mpi_2proc",
        "snet_best_dynamic",
    ),
) -> Dict[str, Dict[int, VariantResult]]:
    """Reproduce Fig. 6 (left): absolute runtimes of all variants over 1-8 nodes."""
    settings = settings or ExperimentSettings()
    table: Dict[str, Dict[int, VariantResult]] = {}
    for variant in variants:
        table[variant] = {}
        for nodes in node_counts:
            table[variant][nodes] = run_variant(settings, variant, nodes)
    return table


def fig6_speedups(
    runtimes: Dict[str, Dict[int, VariantResult]],
    baseline: str = "mpi_2proc",
    compared: Sequence[str] = ("snet_static_2cpu", "snet_best_dynamic"),
) -> Dict[str, Dict[int, float]]:
    """Reproduce Fig. 6 (right): speed-up relative to MPI with 2 processes/node."""
    if baseline not in runtimes:
        raise ValueError(f"baseline variant {baseline!r} missing from the runtime table")
    speedups: Dict[str, Dict[int, float]] = {}
    for variant in compared:
        if variant not in runtimes:
            continue
        speedups[variant] = {}
        for nodes, result in runtimes[variant].items():
            reference = runtimes[baseline][nodes]
            speedups[variant][nodes] = result.speedup_against(reference)
    return speedups


def scheduling_example(height: int = 3000, num_tasks: int = 48) -> Dict[str, object]:
    """The worked factoring example of Section V.

    "suppose a scene of 3000x3000 pixels is split along the y axis by
    dividing it into 48 sections.  One possible scheduling is to split the
    scene into two batches with the first batch containing 24 sections of
    size 93 and the second batch the remaining 24 sections of size 32."
    """
    scheduler = FactoringScheduler(num_tasks=num_tasks, num_batches=2, decay=3.0)
    sections = scheduler.sections(height)
    sizes = scheduler.batch_sizes(height)
    per_batch = num_tasks // 2
    return {
        "num_sections": len(sections),
        "batch_sizes": sizes,
        "first_batch": [s.rows for s in sections[:per_batch]],
        "second_batch": [s.rows for s in sections[per_batch:]],
        "covers_image": sections[-1].y_end == height,
    }
