"""Plain-text and CSV rendering of the reproduced figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.experiments import VariantResult
from repro.bench.figures import Fig5Cell
from repro.bench.paper_data import PAPER_FIG6_RUNTIMES

__all__ = ["format_fig5_table", "format_fig6_table", "format_speedup_table", "to_csv"]

_VARIANT_LABELS = {
    "snet_static": "S-Net Static",
    "snet_static_2cpu": "S-Net Static 2 CPU",
    "mpi": "MPI",
    "mpi_2proc": "MPI 2 Proc/Node",
    "snet_best_dynamic": "S-Net Best Dynamic",
}


def format_fig5_table(cells: Sequence[Fig5Cell], title: str) -> str:
    """Render a Fig. 5 sweep as rows of runtimes (one row per task count)."""
    token_counts = sorted({cell.tokens for cell in cells})
    task_counts = sorted({cell.tasks for cell in cells})
    lookup = {(c.tasks, c.tokens): c.runtime_seconds for c in cells}
    lines = [title, "tasks\\tokens  " + "".join(f"{t:>10}" for t in token_counts)]
    for tasks in task_counts:
        row = [f"{tasks:>12}  "]
        for tokens in token_counts:
            value = lookup.get((tasks, tokens))
            row.append(f"{value:>10.1f}" if value is not None else f"{'-':>10}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_fig6_table(
    runtimes: Dict[str, Dict[int, VariantResult]],
    include_paper: bool = True,
) -> str:
    """Render the Fig. 6 (left) table: one row per variant, one column per node count."""
    node_counts = sorted({n for per_variant in runtimes.values() for n in per_variant})
    header = f"{'variant':<24}" + "".join(f"{n:>5} nodes" for n in node_counts)
    lines = ["Absolute runtimes in seconds (reproduction)", header]
    for variant, per_node in runtimes.items():
        label = _VARIANT_LABELS.get(variant, variant)
        row = f"{label:<24}"
        for nodes in node_counts:
            result = per_node.get(nodes)
            row += f"{result.runtime_seconds:>10.1f}" if result else f"{'-':>10}"
        lines.append(row)
    if include_paper:
        lines.append("")
        lines.append("Paper values (Fig. 6 left), seconds")
        for variant, per_node in PAPER_FIG6_RUNTIMES.items():
            label = _VARIANT_LABELS.get(variant, variant)
            row = f"{label:<24}"
            for nodes in node_counts:
                value = per_node.get(nodes)
                row += f"{value:>10.1f}" if value is not None else f"{'-':>10}"
            lines.append(row)
    return "\n".join(lines)


def format_speedup_table(speedups: Dict[str, Dict[int, float]]) -> str:
    """Render the Fig. 6 (right) speed-up chart as a table."""
    node_counts = sorted({n for per_variant in speedups.values() for n in per_variant})
    header = f"{'variant':<24}" + "".join(f"{n:>5} nodes" for n in node_counts)
    lines = ["Speed-up versus MPI 2 Processes/Node", header]
    for variant, per_node in speedups.items():
        label = _VARIANT_LABELS.get(variant, variant)
        row = f"{label:<24}"
        for nodes in node_counts:
            value = per_node.get(nodes)
            row += f"{value:>10.2f}" if value is not None else f"{'-':>10}"
        lines.append(row)
    return "\n".join(lines)


def to_csv(rows: Iterable[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise result dictionaries as CSV text (no external dependencies)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in columns))
    return "\n".join(lines)
