"""Run a ray-tracing farm variant on a named runtime backend.

This is the single entry point the examples, benchmarks and ad-hoc scripts
use to execute the paper's networks without caring which runtime executes
them::

    from repro.apps.runner import run_raytracing_farm

    run = run_raytracing_farm("dynamic", runtime="process", width=64,
                              height=64, runtime_options={"workers": 4})
    print(run.seconds, run.image.shape)

Only the *executing* backends make sense here (``threaded``, ``process``):
the farm renders real pixels through a :class:`RealRenderBackend` (or any
backend you pass in) and the resulting image is read back from the backend
object after ``genImg`` fired.  For the simulated/virtual-time experiments
use :mod:`repro.bench.experiments`, which drives the ``dsnet`` backend with
the model render backend instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.apps.backends import RealRenderBackend, RenderBackend
from repro.apps.networks import (
    build_dynamic_network,
    build_static_2cpu_network,
    build_static_network,
)
from repro.apps.workloads import dynamic_input_records, extract_image, initial_record
from repro.raytracer.camera import Camera
from repro.raytracer.scene import Scene, random_scene
from repro.scheduling.base import Scheduler
from repro.snet.records import Record
from repro.snet.runtime import run_on

__all__ = ["FarmRun", "run_raytracing_farm", "FARM_VARIANTS"]

#: variant name -> network builder
FARM_VARIANTS = {
    "static": build_static_network,
    "static_2cpu": build_static_2cpu_network,
    "dynamic": build_dynamic_network,
}


@dataclass
class FarmRun:
    """Outcome of one farm execution.

    ``rays_cast`` is the total number of rays the solver boxes traced,
    aggregated from the per-chunk counters by the merger side (so the count
    is correct even when the solvers executed in forked pool workers).
    """

    variant: str
    runtime: str
    image: Any
    outputs: List[Record]
    seconds: float
    backend: RenderBackend = field(repr=False)
    render_mode: str = "scalar"
    rays_cast: int = 0


def run_raytracing_farm(
    variant: str = "static",
    runtime: str = "threaded",
    *,
    width: int = 64,
    height: int = 64,
    nodes: int = 4,
    tasks: int = 8,
    tokens: Optional[int] = None,
    scene: Optional[Scene] = None,
    num_spheres: int = 30,
    seed: int = 7,
    scheduler: Optional[Scheduler] = None,
    backend: Optional[RenderBackend] = None,
    runtime_options: Optional[Dict[str, Any]] = None,
    timeout: float = 300.0,
    render_mode: Optional[str] = None,
) -> FarmRun:
    """Build one of the paper's farm variants and run it to completion.

    Parameters mirror the paper's experiment knobs: ``nodes`` compute nodes,
    ``tasks`` image sections, and (dynamic variant only) ``tokens`` initial
    node tokens, defaulting to ``nodes``.  ``render_mode`` selects the solver
    execution strategy (``"scalar"`` per-pixel oracle or the vectorized
    ``"packet"`` path); ``None`` keeps the backend's own mode (``"scalar"``
    for a freshly created backend).
    """
    if variant not in FARM_VARIANTS:
        raise ValueError(
            f"unknown farm variant {variant!r}; available: "
            + ", ".join(sorted(FARM_VARIANTS))
        )
    if scene is None:
        scene = random_scene(num_spheres=num_spheres, clustering=0.5, seed=seed)
    if backend is None:
        backend = RealRenderBackend(
            scene,
            Camera(width=width, height=height),
            render_mode=render_mode or "scalar",
        )
    network = FARM_VARIANTS[variant](backend, scheduler, render_mode=render_mode)
    if variant == "dynamic":
        inputs = dynamic_input_records(
            scene, nodes=nodes, tasks=tasks, tokens=tokens if tokens is not None else nodes
        )
    else:
        inputs = [initial_record(scene, nodes=nodes, tasks=tasks)]

    start = time.perf_counter()
    outputs = run_on(runtime, network, inputs, timeout=timeout, **(runtime_options or {}))
    seconds = time.perf_counter() - start
    return FarmRun(
        variant=variant,
        runtime=runtime,
        image=extract_image(backend),
        outputs=outputs,
        seconds=seconds,
        backend=backend,
        render_mode=getattr(backend, "render_mode", "scalar"),
        rays_cast=getattr(backend, "rays_cast", 0),
    )
