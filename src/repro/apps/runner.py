"""Run a ray-tracing farm variant on a named runtime backend.

This is the single entry point the examples, benchmarks and ad-hoc scripts
use to execute the paper's networks without caring which runtime executes
them::

    from repro.apps.runner import run_raytracing_farm

    run = run_raytracing_farm("dynamic", runtime="process", width=64,
                              height=64, runtime_options={"workers": 4})
    print(run.seconds, run.image.shape)

Only the *executing* backends make sense here (``threaded``, ``process``,
``distributed``): the farm renders real pixels through a
:class:`RealRenderBackend` (or any backend you pass in) and the resulting
image is read back from the backend object after ``genImg`` fired.  On the
``distributed`` backend the farm's placement combinators are honoured for
real: every ``solver !@ <node>`` replica executes on the compute-node
worker process selected by its ``<node>`` tag (the runtime's ``nodes``
option defaults to the farm's ``nodes`` knob).  For the simulated/
virtual-time experiments use :mod:`repro.bench.experiments`, which drives
the ``dsnet`` backend with the model render backend instead.

Data planes
-----------

``data_plane`` selects how pixels travel between the solver boxes and the
merger:

``"records"``
    Rendered chunks ride inside the records (the paper's model and PR 2's
    behaviour).  On the process backend every chunk is pickled across the
    pool boundary and the scene is pickled into every batch.
``"shared"``
    The frame is allocated in ``multiprocessing.shared_memory`` before the
    pool forks (:class:`SharedFrameRenderBackend`); solver workers write
    rows directly into it and only metadata crosses the boundary, with the
    scene broadcast through the fork-shared registry.
``"auto"`` (default)
    ``"shared"`` on the process backend, ``"records"`` elsewhere — the
    threaded backend keeps its record-passing semantics as the correctness
    oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.apps.backends import (
    RealRenderBackend,
    RenderBackend,
    SharedFrameRenderBackend,
)
from repro.apps.networks import (
    build_dynamic_network,
    build_static_2cpu_network,
    build_static_network,
)
from repro.apps.workloads import dynamic_input_records, extract_image, initial_record
from repro.raytracer.camera import Camera
from repro.raytracer.scene import Scene, random_scene
from repro.scheduling.base import Scheduler
from repro.snet.records import Record
from repro.snet.runtime import get_runtime, run_on

__all__ = [
    "FarmRun",
    "WarmRuntimeParts",
    "run_raytracing_farm",
    "resolve_data_plane",
    "build_farm_backend",
    "build_warm_runtime",
    "farm_inputs",
    "FARM_VARIANTS",
    "DATA_PLANES",
]

#: variant name -> network builder
FARM_VARIANTS = {
    "static": build_static_network,
    "static_2cpu": build_static_2cpu_network,
    "dynamic": build_dynamic_network,
}

#: the selectable solver->merger data planes (see module docstring)
DATA_PLANES = ("auto", "shared", "records")


@dataclass
class FarmRun:
    """Outcome of one farm execution.

    ``rays_cast`` is the total number of rays the solver boxes traced,
    aggregated from the per-chunk counters by the merger side (so the count
    is correct even when the solvers executed in forked pool workers).
    ``bytes_pickled`` is the total bytes serialized across the process-pool
    boundary during the run (0 on the threaded backend, which passes
    references) — the quantity the zero-copy data plane minimises.

    ``tiles_reused``/``rays_saved`` account for the temporal tile cache:
    sections served from the previous frame's cache and the rays their
    cached renders originally cost.  The accounting is honest —
    ``rays_cast`` only counts rays *actually traced this run*, and the
    avoided work is reported separately rather than inflating or deflating
    the traced count.
    """

    variant: str
    runtime: str
    image: Any
    outputs: List[Record]
    seconds: float
    backend: RenderBackend = field(repr=False)
    render_mode: str = "scalar"
    rays_cast: int = 0
    data_plane: str = "records"
    bytes_pickled: int = 0
    tiles_reused: int = 0
    rays_saved: int = 0


def resolve_data_plane(
    data_plane: str, runtime: str, backend: Optional[RenderBackend] = None
) -> str:
    """Resolve a ``data_plane`` request to the concrete plane of a run.

    Parameters
    ----------
    data_plane:
        One of :data:`DATA_PLANES` — ``"auto"``, ``"shared"`` or
        ``"records"``.
    runtime:
        The runtime backend name the run targets (``"auto"`` resolves to
        ``"shared"`` only on ``"process"``).
    backend:
        Optional explicit render backend; when given, the backend's own
        nature decides the plane and a contradictory request raises
        :class:`ValueError`.

    Returns the resolved plane name, always ``"shared"`` or ``"records"``.

    >>> resolve_data_plane("auto", "process")
    'shared'
    >>> resolve_data_plane("auto", "threaded")
    'records'
    >>> resolve_data_plane("auto", "distributed")
    'records'
    >>> resolve_data_plane("records", "process")
    'records'
    """
    if data_plane not in DATA_PLANES:
        raise ValueError(
            f"unknown data plane {data_plane!r}; available: " + ", ".join(DATA_PLANES)
        )
    if backend is not None:
        # an explicit backend defines its own data plane; reject a
        # contradictory request instead of silently ignoring it
        is_shared = isinstance(backend, SharedFrameRenderBackend)
        if data_plane == "shared" and not is_shared:
            raise ValueError(
                "data_plane='shared' requires a SharedFrameRenderBackend; got "
                f"{type(backend).__name__}"
            )
        if data_plane == "records" and is_shared:
            raise ValueError(
                "data_plane='records' contradicts the SharedFrameRenderBackend "
                "passed as backend"
            )
        return "shared" if is_shared else "records"
    if data_plane == "auto":
        return "shared" if runtime == "process" else "records"
    return data_plane


def build_farm_backend(
    scene: Scene,
    width: int,
    height: int,
    plane: str,
    render_mode: Optional[str] = None,
    incremental: bool = True,
) -> RenderBackend:
    """Construct the render backend matching a resolved data plane.

    ``plane`` must already be concrete (``"shared"`` or ``"records"``, see
    :func:`resolve_data_plane`).  The shared plane allocates the frame in
    ``multiprocessing.shared_memory`` — callers own the returned backend and
    must eventually call ``release()`` on it.  ``incremental=False`` disables
    the temporal tile cache (the backend then never captures tile summaries
    or short-circuits clean sections).

    >>> from repro.raytracer.scene import random_scene
    >>> backend = build_farm_backend(random_scene(num_spheres=2), 16, 16, "records")
    >>> type(backend).__name__, backend.width, backend.height
    ('RealRenderBackend', 16, 16)
    """
    backend_cls = SharedFrameRenderBackend if plane == "shared" else RealRenderBackend
    backend = backend_cls(
        scene,
        Camera(width=width, height=height),
        render_mode=render_mode or "scalar",
    )
    backend.incremental = bool(incremental)
    return backend


@dataclass
class WarmRuntimeParts:
    """Everything a warm slot keeps alive between jobs on one scene.

    Produced by :func:`build_warm_runtime`; owned by the caller — release by
    calling ``runtime.teardown()`` and ``backend.release()`` (in that order),
    which is exactly what :meth:`repro.apps.warm_pool.WarmPoolManager`
    eviction does.
    """

    scene: Scene
    backend: RenderBackend = field(repr=False)
    network: Any = field(repr=False)
    runtime: Any = field(repr=False)
    setup_seconds: float = 0.0


def build_warm_runtime(
    scene: Scene,
    variant: str,
    *,
    width: int,
    height: int,
    plane: str,
    render_mode: Optional[str] = None,
    scheduler: Optional[Scheduler] = None,
    runtime: str = "threaded",
    runtime_options: Optional[Dict[str, Any]] = None,
    incremental: bool = True,
) -> WarmRuntimeParts:
    """Build the warm parts of one render slot: backend, network, runtime.

    This is the cold path a warm pool pays once per cached scene: scene
    preparation (BVH build + broadcast registration), render-backend and
    (on the shared plane) frame-segment allocation, network construction and
    the runtime's ``setup()`` (which forks pools / node workers).  On *any*
    failure the partially built slot is torn down before the exception
    propagates — a failed cold build must not leak a shared-memory frame
    segment or half-forked workers.

    With ``incremental`` (the default) the backend keeps a cross-job tile
    cache, so consecutive jobs on this warm runtime that edit the scene
    through :meth:`Scene.begin_edit` re-render only the dirty tiles.  On
    fork-based runtimes (``process``/``distributed``) the workers hold
    fork-time scene *copies*, so the backend is additionally configured to
    ship the journal entries recorded after the fork along with every
    renderable section (``ship_edits``/``broadcast_epoch``).

    >>> from repro.raytracer.scene import random_scene
    >>> parts = build_warm_runtime(random_scene(num_spheres=2), "static",
    ...                            width=16, height=16, plane="records")
    >>> parts.setup_seconds >= 0.0 and parts.backend.width == 16
    True
    """
    if variant not in FARM_VARIANTS:
        raise ValueError(
            f"unknown farm variant {variant!r}; available: "
            + ", ".join(sorted(FARM_VARIANTS))
        )
    started = time.perf_counter()
    prepare = getattr(scene, "prepare_for_broadcast", None)
    if callable(prepare):
        prepare()  # build the BVH once; warm jobs inherit it
    backend = build_farm_backend(
        scene, width, height, plane, render_mode, incremental=incremental
    )
    try:
        network = FARM_VARIANTS[variant](backend, scheduler, render_mode=render_mode)
        options = dict(runtime_options or {})
        if runtime == "process":
            options.setdefault("zero_copy", plane == "shared")
        runtime_obj = get_runtime(runtime, **options)
        setup = getattr(runtime_obj, "setup", None)
        if callable(setup):
            # register boxes + broadcast the scene, then fork the pool — once
            runtime_obj.setup(network, broadcast=(scene,))
        if runtime in ("process", "distributed"):
            # forked workers hold fork-time scene copies: ship every edit
            # committed after this point along with the sections
            backend.ship_edits = True
            backend.broadcast_epoch = getattr(scene, "edit_epoch", 0)
    except BaseException:
        # the engines' setup() already tears itself down on failure; the
        # frame segment allocated above is ours to release
        release = getattr(backend, "release", None)
        if callable(release):
            release()
        raise
    return WarmRuntimeParts(
        scene=scene,
        backend=backend,
        network=network,
        runtime=runtime_obj,
        setup_seconds=time.perf_counter() - started,
    )


def farm_inputs(
    variant: str,
    scene: Scene,
    *,
    nodes: int,
    tasks: int,
    tokens: Optional[int] = None,
) -> List[Record]:
    """Build the input records of one farm job.

    The static variants take a single ``{scene, <nodes>, <tasks>}`` record;
    the dynamic variant additionally carries ``<tokens>`` (defaulting to
    ``nodes``).  Raises :class:`ValueError` for an unknown ``variant``.

    >>> from repro.raytracer.scene import random_scene
    >>> recs = farm_inputs("dynamic", random_scene(num_spheres=2), nodes=2, tasks=4)
    >>> len(recs), recs[0].tag("tasks"), recs[0].tag("tokens")
    (1, 4, 2)
    """
    if variant not in FARM_VARIANTS:
        raise ValueError(
            f"unknown farm variant {variant!r}; available: "
            + ", ".join(sorted(FARM_VARIANTS))
        )
    if variant == "dynamic":
        return dynamic_input_records(
            scene, nodes=nodes, tasks=tasks,
            tokens=tokens if tokens is not None else nodes,
        )
    return [initial_record(scene, nodes=nodes, tasks=tasks)]


def run_raytracing_farm(
    variant: str = "static",
    runtime: str = "threaded",
    *,
    width: int = 64,
    height: int = 64,
    nodes: int = 4,
    tasks: int = 8,
    tokens: Optional[int] = None,
    scene: Optional[Scene] = None,
    num_spheres: int = 30,
    seed: int = 7,
    scheduler: Optional[Scheduler] = None,
    backend: Optional[RenderBackend] = None,
    runtime_options: Optional[Dict[str, Any]] = None,
    timeout: float = 300.0,
    render_mode: Optional[str] = None,
    data_plane: str = "auto",
    incremental: bool = True,
) -> FarmRun:
    """Build one of the paper's farm variants and run it to completion.

    Parameters mirror the paper's experiment knobs: ``nodes`` compute nodes,
    ``tasks`` image sections, and (dynamic variant only) ``tokens`` initial
    node tokens, defaulting to ``nodes``.  ``render_mode`` selects the solver
    execution strategy (``"scalar"`` per-pixel oracle or the vectorized
    ``"packet"`` path); ``None`` keeps the backend's own mode (``"scalar"``
    for a freshly created backend).  ``data_plane`` selects how pixels reach
    the merger (see module docstring); on the process backend it also gates
    the runtime's fork-shared scene broadcast (``zero_copy``), unless
    ``runtime_options`` pins that explicitly.

    Returns a :class:`FarmRun` carrying the rendered ``image`` (a
    ``(height, width, 3)`` float64 array), the raw output records, the
    wall-clock ``seconds`` and the run's instrumentation counters.

    >>> run = run_raytracing_farm("static", width=16, height=16, nodes=2,
    ...                           tasks=2, num_spheres=4, render_mode="packet")
    >>> run.image.shape, run.data_plane, run.rays_cast > 0
    ((16, 16, 3), 'records', True)

    A one-shot run has no previous frame, so the temporal tile cache never
    fires and the reuse counters stay zero (they matter for warm reuse, see
    :class:`repro.apps.service.RenderService`):

    >>> run.tiles_reused, run.rays_saved
    (0, 0)

    One-shot calls pay full runtime construction every time; to amortise
    setup across many renders of the same scene, use
    :class:`repro.apps.service.RenderService` instead.
    """
    plane = resolve_data_plane(data_plane, runtime, backend)
    if scene is None:
        scene = random_scene(num_spheres=num_spheres, clustering=0.5, seed=seed)
    # farm_inputs validates the variant and the dynamic token bounds; doing it
    # before backend construction means an invalid job cannot leak a
    # shared-memory frame segment
    inputs = farm_inputs(variant, scene, nodes=nodes, tasks=tasks, tokens=tokens)
    release_backend = False
    if backend is None:
        backend = build_farm_backend(
            scene, width, height, plane, render_mode, incremental=incremental
        )
        release_backend = plane == "shared"
    network = FARM_VARIANTS[variant](backend, scheduler, render_mode=render_mode)
    # the backend counters are cumulative across jobs on a reused backend;
    # diff around the run so FarmRun reports this job's reuse only
    tiles_before = getattr(backend, "tiles_reused", 0)
    rays_saved_before = getattr(backend, "rays_saved", 0)

    options = dict(runtime_options or {})
    if runtime == "process":
        # the record plane doubles as the PR 2 baseline: no scene broadcast
        options.setdefault("zero_copy", plane == "shared")
    elif runtime == "distributed":
        # one compute-node worker per farm node, so every <node> tag value
        # maps to its own OS process (override via runtime_options)
        options.setdefault("nodes", nodes)
    runtime_obj = get_runtime(runtime, **options)

    try:
        start = time.perf_counter()
        outputs = run_on(runtime_obj, network, inputs, timeout=timeout)
        seconds = time.perf_counter() - start
        image = extract_image(backend)
    finally:
        if release_backend:
            # genImg snapshots the frame into backend.saved_images, so the
            # segment can be unlinked as soon as the run is over
            backend.release()
    return FarmRun(
        variant=variant,
        runtime=runtime,
        image=image,
        outputs=outputs,
        seconds=seconds,
        backend=backend,
        render_mode=getattr(backend, "render_mode", "scalar"),
        rays_cast=getattr(backend, "rays_cast", 0),
        data_plane=plane,
        bytes_pickled=getattr(runtime_obj, "bytes_pickled", 0),
        tiles_reused=getattr(backend, "tiles_reused", 0) - tiles_before,
        rays_saved=getattr(backend, "rays_saved", 0) - rays_saved_before,
    )
