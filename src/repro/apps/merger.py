"""The merger sub-network of Fig. 3.

The merger re-combines the asynchronously arriving image chunks into one
complete picture.  Its S-Net source (reproduced verbatim in
:data:`repro.apps.networks.FIG3_MERGER_SOURCE`) is::

    net merger
    {
      box init ( (chunk, <fst>) -> (pic));
      box merge ( (chunk, pic) -> (pic));
    } connect
      ( ( init .. [ {} -> {<cnt=1>} ] )
        | []
      )
      .. ( [| {pic}, {chunk} |]
           .. ( ( merge
                  .. [ {<cnt>} -> {<cnt+=1>}]
                )
                | []
              )
         )*{<tasks> == <cnt>} ;

Reading it: the first chunk (tagged ``<fst>``) is turned into the initial
picture and a ``<cnt>=1`` counter is attached; every other chunk bypasses the
initialisation.  The star then repeatedly synchronises the accumulator
picture with one more chunk, merges them, increments the counter, and
releases the picture once ``<cnt>`` equals the flow-inherited ``<tasks>``.
The bypass branch inside the star forwards chunks that are not consumed by
the current unrolling to the next one (the star does not feed records back).

A structural property this network guarantees — and the backends exploit —
is that the ``pic`` token is *linear*: at any instant exactly one live
``pic`` record exists (init creates it, each synchrocell joins it with one
chunk, each merge consumes it and emits its sole successor).  The merge box
body may therefore mutate the accumulator in place (O(chunk) per merge
instead of the paper's O(H·W) copy) or reduce to pure bookkeeping when the
pixels live in a shared frame buffer; see
:class:`repro.apps.backends.RealRenderBackend` (``copy_on_merge``) and
:class:`repro.apps.backends.SharedFrameRenderBackend`.
"""

from __future__ import annotations

from repro.apps.boxes import RayTracingBoxes
from repro.snet.combinators import Parallel, Serial, Star
from repro.snet.filters import Filter
from repro.snet.network import Network
from repro.snet.patterns import Guard, Pattern, TagRef
from repro.snet.synchrocell import SyncroCell

__all__ = ["build_merger"]


def build_merger(boxes: RayTracingBoxes) -> Network:
    """Construct the merger network programmatically (matching Fig. 3)."""
    init_box = boxes.init_box()
    merge_box = boxes.merge_box()

    # ( init .. [ {} -> {<cnt=1>} ] ) | []
    init_path = Serial(init_box, Filter.simple(Pattern(), assign_tags={"cnt": 1}, name="set-cnt"))
    init_stage = Parallel(init_path, Filter.identity("bypass-init"))

    # [| {pic}, {chunk} |] .. ( ( merge .. [ {<cnt>} -> {<cnt+=1>} ] ) | [] )
    sync = SyncroCell([Pattern(["pic"]), Pattern(["chunk"])], name="pic-chunk-sync")
    increment = Filter.simple(
        Pattern(["<cnt>"]), assign_tags={"cnt": TagRef("cnt") + 1}, name="inc-cnt"
    )
    merge_path = Serial(merge_box, increment)
    merge_stage = Serial(sync, Parallel(merge_path, Filter.identity("bypass-merge")))

    # ( ... )*{<tasks> == <cnt>}
    exit_pattern = Pattern(
        ["<tasks>", "<cnt>"], Guard(TagRef("tasks") == TagRef("cnt"))
    )
    star = Star(merge_stage, exit_pattern, name="merge-star")

    return Network("merger", Serial(init_stage, star))
