"""Render backends: real pixels or modelled costs.

The S-Net networks and the MPI baseline are written once against the
:class:`RenderBackend` interface:

* :class:`RealRenderBackend` actually traces rays — used by the examples,
  the integration tests and any run where the image itself matters (small
  resolutions);
* :class:`ModelRenderBackend` produces lightweight placeholder chunks whose
  payload sizes match the real ones and exposes per-section costs from the
  :class:`~repro.raytracer.cost.SectionCostModel` — used by the simulated
  performance experiments, where only *when* things happen matters.

This split is the substitution documented in DESIGN.md: the coordination
structures (networks, schedulers, runtimes) are identical in both modes; only
the box bodies differ.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.raytracer.camera import Camera
from repro.raytracer.cost import CostParameters, SectionCostModel
from repro.raytracer.image import ImageChunk, blank_image, merge_chunk_into, to_ppm
from repro.raytracer.scene import Scene
from repro.raytracer.tracer import check_render_mode, render_section
from repro.scheduling.base import Section

__all__ = [
    "RenderBackend",
    "RealRenderBackend",
    "ModelRenderBackend",
    "ChunkPlaceholder",
    "PicturePlaceholder",
]

#: memory-copy throughput of the reference CPU (bytes/second), used to cost
#: the merger's accumulator copies and the master's image assembly
REFERENCE_COPY_BANDWIDTH = 400e6
#: effective shared-filesystem write throughput (bytes/second)
REFERENCE_WRITE_BANDWIDTH = 8e6
#: effective scene-loading throughput (bytes/second)
REFERENCE_READ_BANDWIDTH = 8e6


@dataclass
class ChunkPlaceholder:
    """Stand-in for an :class:`~repro.raytracer.image.ImageChunk` (model mode)."""

    y_start: int
    rows: int
    width: int
    section_id: int = 0

    @property
    def y_end(self) -> int:
        return self.y_start + self.rows

    def payload_size(self) -> int:
        return self.rows * self.width * 3 + 32


@dataclass
class PicturePlaceholder:
    """Stand-in for the accumulated result picture (model mode)."""

    width: int
    height: int
    merged_chunks: int = 0
    covered_rows: int = 0

    def payload_size(self) -> int:
        return self.width * self.height * 3 + 32


class RenderBackend:
    """Interface between the coordination code and the rendering substrate."""

    def __init__(self, scene: Scene, camera: Camera):
        self.scene = scene
        self.camera = camera
        self.saved_images: List[Any] = []
        self._stats_lock = threading.Lock()
        self.rays_cast = 0

    # -- tracing stats ---------------------------------------------------------
    def add_rays_cast(self, count: int) -> None:
        """Thread-safely accumulate rays cast by one solver invocation.

        Solver replicas under the threaded runtime share this backend object
        from several worker threads, hence the lock.
        """
        if count:
            with self._stats_lock:
                self.rays_cast += int(count)

    def absorb_chunk_stats(self, chunk: Any) -> None:
        """Fold a chunk's tracing stats into the backend totals.

        Called by the merger-side boxes (which always execute in the
        coordinating process), so the counts survive even when the solver ran
        in a forked pool worker whose backend copy is unreachable.
        """
        self.add_rays_cast(getattr(chunk, "rays_cast", 0))

    # -- geometry ------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.camera.width

    @property
    def height(self) -> int:
        return self.camera.height

    # -- box bodies -----------------------------------------------------------
    def render_section(self, section: Section) -> Any:
        """The solver body: render one section, return the chunk."""
        raise NotImplementedError

    def init_picture(self, chunk: Any) -> Any:
        """The init body: create the accumulator picture from the first chunk."""
        raise NotImplementedError

    def merge(self, picture: Any, chunk: Any) -> Any:
        """The merge body: insert a chunk into (a copy of) the picture."""
        raise NotImplementedError

    def write_image(self, picture: Any) -> None:
        """The genImg body: write the completed picture to the output file."""
        self.saved_images.append(picture)

    # -- cost model (reference seconds; model mode only) ----------------------
    def section_cost(self, section: Section) -> float:
        return 0.0

    def chunk_copy_cost(self, chunk: Any) -> float:
        return 0.0

    def picture_copy_cost(self) -> float:
        return 0.0

    def image_write_cost(self) -> float:
        return 0.0

    def scene_load_cost(self) -> float:
        return 0.0

    def split_cost(self) -> float:
        return 0.0


class RealRenderBackend(RenderBackend):
    """Backend that actually renders pixels (for small resolutions).

    ``render_mode`` selects the execution strategy of the solver body:
    ``"scalar"`` renders one pixel at a time (the correctness oracle),
    ``"packet"`` renders each section as one vectorized NumPy ray packet
    (see :mod:`repro.raytracer.packet`); both produce the same image to
    within ``atol=1e-9``.
    """

    def __init__(self, scene: Scene, camera: Camera, render_mode: str = "scalar"):
        super().__init__(scene, camera)
        self.render_mode = check_render_mode(render_mode)

    def render_section(self, section: Section) -> ImageChunk:
        return render_section(
            self.scene,
            self.camera,
            section.y_start,
            section.y_end,
            section.index,
            mode=self.render_mode,
        )

    def init_picture(self, chunk: ImageChunk) -> np.ndarray:
        self.absorb_chunk_stats(chunk)
        picture = blank_image(self.width, self.height)
        return merge_chunk_into(picture, chunk)

    def merge(self, picture: np.ndarray, chunk: ImageChunk) -> np.ndarray:
        self.absorb_chunk_stats(chunk)
        return merge_chunk_into(picture, chunk)

    def write_image(self, picture: np.ndarray) -> None:
        # keep both the raw array (for assertions) and the PPM encoding
        self.saved_images.append(picture)
        self.last_ppm = to_ppm(picture)


class ModelRenderBackend(RenderBackend):
    """Backend that produces placeholders and costs instead of pixels."""

    def __init__(
        self,
        scene: Scene,
        camera: Camera,
        cost_parameters: Optional[CostParameters] = None,
    ):
        super().__init__(scene, camera)
        self.cost_model = SectionCostModel(scene, camera, cost_parameters)

    # -- box bodies -----------------------------------------------------------
    def render_section(self, section: Section) -> ChunkPlaceholder:
        return ChunkPlaceholder(
            y_start=section.y_start,
            rows=section.rows,
            width=self.width,
            section_id=section.index,
        )

    def init_picture(self, chunk: ChunkPlaceholder) -> PicturePlaceholder:
        return PicturePlaceholder(
            width=self.width,
            height=self.height,
            merged_chunks=1,
            covered_rows=chunk.rows,
        )

    def merge(self, picture: PicturePlaceholder, chunk: ChunkPlaceholder) -> PicturePlaceholder:
        return PicturePlaceholder(
            width=picture.width,
            height=picture.height,
            merged_chunks=picture.merged_chunks + 1,
            covered_rows=picture.covered_rows + chunk.rows,
        )

    # -- costs ------------------------------------------------------------------
    def section_cost(self, section: Section) -> float:
        return self.cost_model.section_cost(section.y_start, section.y_end)

    def chunk_copy_cost(self, chunk: Any) -> float:
        nbytes = chunk.payload_size() if hasattr(chunk, "payload_size") else 0
        return nbytes / REFERENCE_COPY_BANDWIDTH

    def picture_copy_cost(self) -> float:
        return (self.width * self.height * 3) / REFERENCE_COPY_BANDWIDTH

    def image_write_cost(self) -> float:
        return (self.width * self.height * 3) / REFERENCE_WRITE_BANDWIDTH

    def scene_load_cost(self) -> float:
        return self.scene.payload_size() / REFERENCE_READ_BANDWIDTH

    def split_cost(self) -> float:
        return 0.01
