"""Render backends: real pixels or modelled costs.

The S-Net networks and the MPI baseline are written once against the
:class:`RenderBackend` interface:

* :class:`RealRenderBackend` actually traces rays — used by the examples,
  the integration tests and any run where the image itself matters (small
  resolutions);
* :class:`ModelRenderBackend` produces lightweight placeholder chunks whose
  payload sizes match the real ones and exposes per-section costs from the
  :class:`~repro.raytracer.cost.SectionCostModel` — used by the simulated
  performance experiments, where only *when* things happen matters.

This split is the substitution documented in DESIGN.md: the coordination
structures (networks, schedulers, runtimes) are identical in both modes; only
the box bodies differ.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.raytracer.camera import Camera
from repro.raytracer.coherence import plan_tiles
from repro.raytracer.cost import CostParameters, SectionCostModel
from repro.raytracer.image import (
    FrameChunkRef,
    ImageChunk,
    SharedFrameBuffer,
    blank_image,
    merge_chunk_into,
    to_ppm,
)
from repro.raytracer.mutation import apply_edits
from repro.raytracer.scene import Scene
from repro.raytracer.tracer import check_render_mode, render_section
from repro.scheduling.base import Section

__all__ = [
    "RenderBackend",
    "RealRenderBackend",
    "SharedFrameRenderBackend",
    "ModelRenderBackend",
    "ChunkPlaceholder",
    "PicturePlaceholder",
    "SharedFramePicture",
]

#: memory-copy throughput of the reference CPU (bytes/second), used to cost
#: the merger's accumulator copies and the master's image assembly
REFERENCE_COPY_BANDWIDTH = 400e6
#: effective shared-filesystem write throughput (bytes/second)
REFERENCE_WRITE_BANDWIDTH = 8e6
#: effective scene-loading throughput (bytes/second)
REFERENCE_READ_BANDWIDTH = 8e6


@dataclass
class ChunkPlaceholder:
    """Stand-in for an :class:`~repro.raytracer.image.ImageChunk` (model mode)."""

    y_start: int
    rows: int
    width: int
    section_id: int = 0

    @property
    def y_end(self) -> int:
        return self.y_start + self.rows

    def payload_size(self) -> int:
        return self.rows * self.width * 3 + 32


@dataclass
class SharedFramePicture:
    """Bookkeeping token for an accumulator living in a shared frame buffer.

    On the zero-copy data plane the ``pic`` record is pure metadata: the
    pixels already sit in the :class:`~repro.raytracer.image.SharedFrameBuffer`
    the solver workers wrote into, so "merging" degenerates to counting the
    chunks and rows accounted for.
    """

    width: int
    height: int
    merged_chunks: int = 0
    covered_rows: int = 0

    def absorb(self, chunk: FrameChunkRef) -> "SharedFramePicture":
        if self.covered_rows + chunk.rows > self.height:
            raise ValueError(
                f"merging chunk rows [{chunk.y_start}, {chunk.y_end}) exceeds "
                f"frame height {self.height}"
            )
        return SharedFramePicture(
            width=self.width,
            height=self.height,
            merged_chunks=self.merged_chunks + 1,
            covered_rows=self.covered_rows + chunk.rows,
        )

    def payload_size(self) -> int:
        return 32


@dataclass
class PicturePlaceholder:
    """Stand-in for the accumulated result picture (model mode)."""

    width: int
    height: int
    merged_chunks: int = 0
    covered_rows: int = 0

    def payload_size(self) -> int:
        return self.width * self.height * 3 + 32


class RenderBackend:
    """Interface between the coordination code and the rendering substrate.

    A backend may serve many runs (a warm service reuses one backend per
    cached scene); call :meth:`begin_job` before each reuse run.  The
    rendered result of a run is read back with
    :func:`repro.apps.workloads.extract_image` after ``genImg`` fired.

    >>> from repro.raytracer.camera import Camera
    >>> from repro.raytracer.scene import random_scene
    >>> backend = ModelRenderBackend(random_scene(num_spheres=2), Camera(width=8, height=8))
    >>> chunk = backend.render_section(Section(index=0, y_start=0, y_end=4))
    >>> (chunk.rows, chunk.width), backend.section_cost(Section(0, 0, 4)) > 0
    ((4, 8), True)
    """

    def __init__(self, scene: Scene, camera: Camera):
        self.scene = scene
        self.camera = camera
        self.saved_images: List[Any] = []
        self._stats_lock = threading.Lock()
        self.rays_cast = 0
        #: master switch for the temporal tile cache; even when ``True`` the
        #: cache only engages for *journaled* scenes (``edit_epoch > 0``), so
        #: plain one-shot jobs behave exactly as before
        self.incremental = True
        #: set by the warm-runtime builder on fork-based runtimes: workers
        #: hold stale fork-shared scene copies, so dirty sections must carry
        #: the journal entries committed since ``broadcast_epoch``
        self.ship_edits = False
        self.broadcast_epoch = 0
        #: lifetime counters (like ``rays_cast``): sections served from the
        #: tile cache and the rays those sections cost when last rendered
        self.tiles_reused = 0
        self.rays_saved = 0
        # tile cache: section index -> (zero-ray chunk copy, TileSummary);
        # valid only for the (scene object, epoch, section signature) in
        # ``_cache_state`` — any mismatch falls back to a full render
        self._tile_cache: Dict[int, Tuple[Any, Any]] = {}
        self._cache_state: Optional[Dict[str, Any]] = None
        self._pending_tiles: Dict[int, Tuple[Any, Any]] = {}
        self._frame_meta: Optional[Dict[str, Any]] = None
        self._camera_cache: Optional[Tuple[Any, Camera]] = None

    # -- reuse across runs ----------------------------------------------------
    def begin_job(self) -> None:
        """Reset per-job observable state before reusing this backend.

        Long-lived callers (the render service) run many jobs against one
        backend; without this, ``saved_images`` would retain every frame ever
        rendered.  ``rays_cast`` is a lifetime counter and is *not* reset —
        per-job counts are obtained by snapshotting it around the run.
        """
        self.saved_images.clear()

    # -- tracing stats ---------------------------------------------------------
    def add_rays_cast(self, count: int) -> None:
        """Thread-safely accumulate rays cast by one solver invocation.

        Solver replicas under the threaded runtime share this backend object
        from several worker threads, hence the lock.
        """
        if count:
            with self._stats_lock:
                self.rays_cast += int(count)

    def absorb_chunk_stats(self, chunk: Any) -> None:
        """Fold a chunk's tracing stats into the backend totals.

        Called by the merger-side boxes (which always execute in the
        coordinating process), so the counts survive even when the solver ran
        in a forked pool worker whose backend copy is unreachable.

        When the current job captures tile summaries (incremental mode), the
        chunk is also banked for the next frame's tile cache: a zero-ray
        copy, so a reused tile can be re-emitted any number of times without
        ever double-counting its original rays.
        """
        self.add_rays_cast(getattr(chunk, "rays_cast", 0))
        meta = self._frame_meta
        if meta is None or not meta["capture"]:
            return
        summary = getattr(chunk, "summary", None)
        if summary is None:
            return
        cached = chunk if getattr(chunk, "rays_cast", 0) == 0 else replace(chunk, rays_cast=0)
        self._pending_tiles[getattr(chunk, "section_id", 0)] = (cached, summary)

    # -- temporal tile cache ---------------------------------------------------
    def _camera_for(self, scene: Scene) -> Camera:
        """The camera to render ``scene`` with, at this backend's resolution.

        A scene-owned camera (``scene.camera``) overrides the backend default
        view; the resolved copy is cached by camera-object identity, so a
        committed camera edit (which installs a fresh object) re-resolves
        while steady-state frames pay a pointer compare.
        """
        cam = getattr(scene, "camera", None)
        if cam is None:
            return self.camera
        cached = self._camera_cache
        if cached is not None and cached[0] is cam:
            return cached[1]
        resolved = cam.with_resolution(self.camera.width, self.camera.height)
        self._camera_cache = (cam, resolved)
        return resolved

    def edits_to_ship(self, scene: Scene) -> Tuple[Any, ...]:
        """Journal entries dirty sections must carry to stale fork workers.

        Empty on shared-memory runtimes (``ship_edits`` unset: threaded
        workers see the coordinator's already-edited scene object).  On fork
        runtimes every dirty section carries all entries committed since the
        pool forked (``broadcast_epoch``): a worker only sees the sections
        routed to it, so it may have missed any prior frame's entries —
        replay is epoch-gated and idempotent, so over-shipping is safe.
        Raises ``RuntimeError`` when the journal no longer reaches back to
        the fork epoch — rendering with silently stale workers would corrupt
        pixels; the render service discards such slots before dispatch, so
        this fires only on direct misuse of a very stale warm runtime.
        """
        if not self.ship_edits:
            return ()
        journal = getattr(scene, "journal", None)
        if journal is None:
            return ()
        entries = journal.entries_since(self.broadcast_epoch)
        if entries is None:
            raise RuntimeError(
                "scene journal no longer covers this runtime's fork epoch "
                f"({self.broadcast_epoch}); rebuild the warm runtime"
            )
        return tuple(entries)

    def plan_job(self, scene: Scene, sections: Sequence[Section]) -> Dict[int, Any]:
        """Decide which sections can be served from the tile cache.

        Called once per job by the splitter (which always runs in the
        coordinating process) with the job's full section list.  Returns
        ``{section index: cached chunk}`` for every section that is provably
        unaffected by the scene edits since the cached frame; the splitter
        short-circuits those records straight to the merger.  Also arms the
        capture of this frame's summaries (see :meth:`absorb_chunk_stats` /
        :meth:`finish_job`).

        The cache is consulted only when *everything* lines up: incremental
        mode on, the scene is journaled, it is the **same scene object** as
        the cached frame (the warm service guarantees this for in-place
        animation), the section layout is unchanged, and the journal still
        covers the cached epoch.  Any mismatch renders everything — the
        planner can only ever degrade to a full re-render.
        """
        epoch = getattr(scene, "edit_epoch", 0)
        capture = bool(self.incremental and epoch > 0)
        signature = tuple(sorted((s.index, s.y_start, s.y_end) for s in sections))
        reuse: Dict[int, Any] = {}
        state = self._cache_state
        journal = getattr(scene, "journal", None)
        if (
            capture
            and state is not None
            and state["scene_id"] == id(scene)
            and state["signature"] == signature
            and journal is not None
        ):
            entries = journal.entries_since(state["epoch"])
            if entries is not None:
                summaries = {
                    index: entry[1] for index, entry in self._tile_cache.items()
                }
                dirty = plan_tiles(
                    entries, summaries, sections, scene.lights, self._camera_for(scene)
                )
                if dirty is not None:
                    for section in sections:
                        entry = self._tile_cache.get(section.index)
                        if section.index not in dirty and entry is not None:
                            reuse[section.index] = entry[0]
        self._pending_tiles = {}
        self._frame_meta = {
            "capture": capture,
            "scene_id": id(scene),
            "epoch": epoch,
            "signature": signature,
            "expected": len(sections),
        }
        if reuse:
            saved = sum(self._tile_cache[index][1].rays for index in reuse)
            with self._stats_lock:
                self.tiles_reused += len(reuse)
                self.rays_saved += saved
        return reuse

    def finish_job(self) -> None:
        """Promote this frame's captured tiles to the cross-job tile cache.

        Called by the ``genImg`` box after the picture is written — i.e.
        after every section (fresh or reused) passed through the merger.  A
        complete frame becomes the new cache; anything short of complete
        (capture off, a chunk without a summary) clears it, so a stale or
        partial cache can never serve a future frame.
        """
        meta, self._frame_meta = self._frame_meta, None
        pending, self._pending_tiles = self._pending_tiles, {}
        if meta is not None and meta["capture"] and len(pending) == meta["expected"]:
            self._tile_cache = pending
            self._cache_state = {
                "scene_id": meta["scene_id"],
                "epoch": meta["epoch"],
                "signature": meta["signature"],
            }
        else:
            self._tile_cache = {}
            self._cache_state = None

    # -- geometry ------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.camera.width

    @property
    def height(self) -> int:
        return self.camera.height

    # -- box bodies -----------------------------------------------------------
    def render_section(self, section: Section) -> Any:
        """The solver body: render one section, return the chunk."""
        raise NotImplementedError

    def init_picture(self, chunk: Any) -> Any:
        """The init body: create the accumulator picture from the first chunk."""
        raise NotImplementedError

    def merge(self, picture: Any, chunk: Any) -> Any:
        """The merge body: insert a chunk into (a copy of) the picture."""
        raise NotImplementedError

    def write_image(self, picture: Any) -> None:
        """The genImg body: write the completed picture to the output file."""
        self.saved_images.append(picture)

    # -- cost model (reference seconds; model mode only) ----------------------
    def section_cost(self, section: Section) -> float:
        return 0.0

    def chunk_copy_cost(self, chunk: Any) -> float:
        return 0.0

    def picture_copy_cost(self) -> float:
        return 0.0

    def merge_cost(self, chunk: Any) -> float:
        """Modelled cost of one merge-box invocation.

        The default charges the paper's copy-based merge (one accumulator
        copy plus one chunk copy).  Backends whose merge is O(chunk) —
        in-place accumulators, shared frame buffers — return less.
        """
        return self.picture_copy_cost() + self.chunk_copy_cost(chunk)

    def image_write_cost(self) -> float:
        return 0.0

    def scene_load_cost(self) -> float:
        return 0.0

    def split_cost(self) -> float:
        return 0.0


class RealRenderBackend(RenderBackend):
    """Backend that actually renders pixels (for small resolutions).

    ``render_mode`` selects the execution strategy of the solver body:
    ``"scalar"`` renders one pixel at a time (the correctness oracle),
    ``"packet"`` renders each section as one vectorized NumPy ray packet
    (see :mod:`repro.raytracer.packet`); both produce the same image to
    within ``atol=1e-9``.

    ``copy_on_merge`` controls the merge box: ``False`` (the default)
    mutates the single live accumulator in place — O(chunk) per merge —
    which is safe because the merger's ``pic`` token is linear in the
    dataflow.  ``True`` restores the paper's copy-per-merge behaviour
    (O(H·W) per merge), useful when callers want to hold on to
    intermediate accumulator states.
    """

    def __init__(
        self,
        scene: Scene,
        camera: Camera,
        render_mode: str = "scalar",
        copy_on_merge: bool = False,
    ):
        super().__init__(scene, camera)
        self.render_mode = check_render_mode(render_mode)
        self.copy_on_merge = copy_on_merge

    def render_section(self, section: Section) -> ImageChunk:
        edits = getattr(section, "edits", ())
        if edits:
            # fork-based worker catching up on journal entries committed in
            # the coordinator after the pool forked (idempotent replay)
            apply_edits(self.scene, edits)
        capture = bool(self.incremental and getattr(self.scene, "edit_epoch", 0) > 0)
        return render_section(
            self.scene,
            self._camera_for(self.scene),
            section.y_start,
            section.y_end,
            section.index,
            mode=self.render_mode,
            touch=capture,
        )

    def init_picture(self, chunk: ImageChunk) -> np.ndarray:
        self.absorb_chunk_stats(chunk)
        picture = blank_image(self.width, self.height)
        return merge_chunk_into(picture, chunk, copy=False)  # fresh, always safe

    def merge(self, picture: np.ndarray, chunk: ImageChunk) -> np.ndarray:
        self.absorb_chunk_stats(chunk)
        return merge_chunk_into(picture, chunk, copy=self.copy_on_merge)

    def merge_cost(self, chunk: Any) -> float:
        # the in-place merge writes only the chunk's rows
        return self.chunk_copy_cost(chunk) if not self.copy_on_merge else (
            self.picture_copy_cost() + self.chunk_copy_cost(chunk)
        )

    def write_image(self, picture: np.ndarray) -> None:
        # keep both the raw array (for assertions) and the PPM encoding
        self.saved_images.append(picture)
        self.last_ppm = to_ppm(picture)


class SharedFrameRenderBackend(RealRenderBackend):
    """Real pixels rendered straight into a shared-memory frame buffer.

    The zero-copy data plane of the process runtime: the frame is allocated
    in ``multiprocessing.shared_memory`` *before* the worker pool forks, so
    every solver worker inherits the mapping and writes its rendered rows
    directly into the final image.  What crosses the process boundary is
    pure metadata — :class:`~repro.raytracer.image.FrameChunkRef` chunks on
    the way back, a :class:`SharedFramePicture` token between the merger
    boxes — and the merge box degenerates to O(1) bookkeeping.

    Works identically (if pointlessly) on the threaded runtime, where the
    "shared" frame is simply process-local memory; the conformance tests
    use that to pin pixel identity against the record-passing oracle.

    Call :meth:`release` (idempotent) when done with the backend: shared
    segments outlive their creator until unlinked.  Images saved by
    ``genImg`` are snapshots, so they stay valid after release.
    """

    def __init__(
        self,
        scene: Scene,
        camera: Camera,
        render_mode: str = "scalar",
    ):
        super().__init__(scene, camera, render_mode=render_mode)
        self.frame = SharedFrameBuffer(camera.width, camera.height)

    def render_section(self, section: Section) -> FrameChunkRef:
        chunk = super().render_section(section)
        ref = self.frame.write_rows(chunk.y_start, chunk.pixels)
        return FrameChunkRef(
            y_start=ref.y_start,
            rows=ref.rows,
            width=ref.width,
            section_id=section.index,
            rays_cast=chunk.rays_cast,
            summary=chunk.summary,
        )

    def init_picture(self, chunk: FrameChunkRef) -> SharedFramePicture:
        self.absorb_chunk_stats(chunk)
        return SharedFramePicture(
            width=self.width, height=self.height, merged_chunks=1,
            covered_rows=chunk.rows,
        )

    def merge(self, picture: SharedFramePicture, chunk: FrameChunkRef) -> SharedFramePicture:
        self.absorb_chunk_stats(chunk)
        return picture.absorb(chunk)

    def merge_cost(self, chunk: Any) -> float:
        return 0.0  # bookkeeping only

    def write_image(self, picture: SharedFramePicture) -> None:
        snapshot = self.frame.snapshot()
        self.saved_images.append(snapshot)
        self.last_ppm = to_ppm(snapshot)

    def release(self) -> None:
        """Unlink the shared frame segment (idempotent)."""
        self.frame.release()


class ModelRenderBackend(RenderBackend):
    """Backend that produces placeholders and costs instead of pixels."""

    def __init__(
        self,
        scene: Scene,
        camera: Camera,
        cost_parameters: Optional[CostParameters] = None,
    ):
        super().__init__(scene, camera)
        self.cost_model = SectionCostModel(scene, camera, cost_parameters)

    # -- box bodies -----------------------------------------------------------
    def render_section(self, section: Section) -> ChunkPlaceholder:
        return ChunkPlaceholder(
            y_start=section.y_start,
            rows=section.rows,
            width=self.width,
            section_id=section.index,
        )

    def init_picture(self, chunk: ChunkPlaceholder) -> PicturePlaceholder:
        return PicturePlaceholder(
            width=self.width,
            height=self.height,
            merged_chunks=1,
            covered_rows=chunk.rows,
        )

    def merge(self, picture: PicturePlaceholder, chunk: ChunkPlaceholder) -> PicturePlaceholder:
        return PicturePlaceholder(
            width=picture.width,
            height=picture.height,
            merged_chunks=picture.merged_chunks + 1,
            covered_rows=picture.covered_rows + chunk.rows,
        )

    # -- costs ------------------------------------------------------------------
    def section_cost(self, section: Section) -> float:
        return self.cost_model.section_cost(section.y_start, section.y_end)

    def chunk_copy_cost(self, chunk: Any) -> float:
        nbytes = chunk.payload_size() if hasattr(chunk, "payload_size") else 0
        return nbytes / REFERENCE_COPY_BANDWIDTH

    def picture_copy_cost(self) -> float:
        return (self.width * self.height * 3) / REFERENCE_COPY_BANDWIDTH

    def image_write_cost(self) -> float:
        return (self.width * self.height * 3) / REFERENCE_WRITE_BANDWIDTH

    def scene_load_cost(self) -> float:
        return self.scene.payload_size() / REFERENCE_READ_BANDWIDTH

    def split_cost(self) -> float:
        return 0.01
