"""The paper's three S-Net network variants (Figs. 2 and 4).

Each builder returns a ready-to-run :class:`~repro.snet.network.Network`:

* :func:`build_static_network` — the simple fork–join model of Fig. 2:
  ``splitter .. solver!@<node> .. merger .. genImg``;
* :func:`build_static_2cpu_network` — the same with one more index split so
  that two solver instances run per node (``(solver!<cpu>)!@<node>``), the
  paper's "S-Net Static 2 CPU" variant;
* :func:`build_dynamic_network` — the dynamically load-balanced variant of
  Section IV-B, where the ``solver!@<node>`` component of Fig. 2 is replaced
  by the solver segment of Fig. 4 (sections without a node tag queue in a
  synchrocell chain until a node token is released by a finished section).

The textual S-Net sources from the paper are kept verbatim in
:data:`FIG2_SOURCE`, :data:`FIG3_MERGER_SOURCE` and :data:`FIG4_SOLVER_SOURCE`
and are parsed by the language front-end tests; the builders construct the
same topology programmatically (plus one documented deviation, see
:func:`build_solver_segment`).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.backends import RenderBackend
from repro.apps.boxes import RayTracingBoxes
from repro.apps.merger import build_merger
from repro.scheduling.base import Scheduler
from repro.snet.combinators import IndexSplit, Parallel, Serial, Star
from repro.snet.filters import Filter, FilterRule, OutputTemplate
from repro.snet.network import Network
from repro.snet.patterns import Pattern
from repro.snet.placement import placed_split
from repro.snet.records import Tag
from repro.snet.synchrocell import SyncroCell

__all__ = [
    "FIG2_SOURCE",
    "FIG3_MERGER_SOURCE",
    "FIG4_SOLVER_SOURCE",
    "build_static_network",
    "build_static_2cpu_network",
    "build_dynamic_network",
    "build_solver_segment",
]


#: Fig. 2 — overall design for the simple fork-join model (verbatim).
FIG2_SOURCE = """
net raytracing_stat
{
  box splitter( (scene, <nodes>, <tasks>)
                -> (scene, sect, <node>, <tasks>, <fst>)
                 | (scene, sect, <node>, <tasks> ));
  box solver ( (scene, sect) -> (chunk));
  net merger ( (chunk, <fst>) -> (pic),
               (chunk) -> (pic));
  box genImg ( (pic) -> ());
} connect
  splitter .. solver!@<node> .. merger .. genImg
"""

#: Fig. 3 — the merger network (verbatim).
FIG3_MERGER_SOURCE = """
net merger
{
  box init ( (chunk, <fst>) -> (pic));
  box merge ( (chunk, pic) -> (pic));
} connect
  ( ( init .. [ {} -> {<cnt=1>} ] )
    | []
  )
  .. ( [| {pic}, {chunk} |]
       .. ( ( merge
              .. [ {<cnt>} -> {<cnt+=1>}]
            )
            | []
          )
     )*{<tasks> == <cnt>} ;
"""

#: Fig. 4 — the dynamically scheduled solver segment (verbatim).
FIG4_SOLVER_SOURCE = """
net solver_segment
{
  box solve ( (scene, sect) -> (chunk));
} connect
  ( ( ( solve .. [ {chunk, <node>}
                   -> {chunk}; {<node>} ]
      )!@<node>
      | []
    )
    .. ( [] | [| {sect}, {<node>} |] )
  ) * {chunk} ;
"""


def build_solver_segment(boxes: RayTracingBoxes) -> Network:
    """The dynamically scheduled solver segment of Fig. 4.

    Structure (exactly the figure)::

        ( ( ( solve .. [ {chunk,<node>} -> {chunk}; {<node>} ] )!@<node>
            | []
          )
          .. ( [] | [| {sect}, {<node>} |] )
        ) * {chunk}

    One deviation from a literal reading of the filter: the node-token output
    template ``{<node>}`` is built *without* flow inheritance.  Under strict
    flow-inheritance semantics the recycled token would drag the ``<fst>``
    tag of the first section onto whichever section it unblocks next, which
    would make the merger initialise a second accumulator picture and never
    terminate.  Fig. 4's own dataflow annotations label the token edge with
    just ``<node>`` (no trailing ellipsis), so the pure token matches the
    intended behaviour.
    """
    solve = boxes.solver()
    # [ {chunk, <node>} -> {chunk} ; {<node>} ]
    release_filter = Filter(
        [
            FilterRule(
                Pattern(["chunk", "<node>"]),
                [
                    OutputTemplate(keep=(Tag("node"),), inherit=False),
                    OutputTemplate(keep=("chunk",), inherit=True),
                ],
            )
        ],
        name="release-node",
    )
    solve_and_release = Serial(solve, release_filter)
    placed = placed_split(solve_and_release, "node")

    first_stage = Parallel(placed, Filter.identity("bypass-unassigned"))

    token_sync = SyncroCell([Pattern(["sect"]), Pattern(["<node>"])], name="sect-node-sync")
    second_stage = Parallel(Filter.identity("bypass-chunks"), token_sync)

    segment = Serial(first_stage, second_stage)
    star = Star(segment, Pattern(["chunk"]), name="solver-star")
    return Network("solver_segment", star)


def build_static_network(
    backend: RenderBackend,
    scheduler: Optional[Scheduler] = None,
    render_mode: Optional[str] = None,
) -> Network:
    """The simple fork-join network of Fig. 2 (one solver instance per node)."""
    boxes = RayTracingBoxes(backend, scheduler, render_mode=render_mode)
    splitter = boxes.static_splitter()
    solver = boxes.solver()
    merger = build_merger(boxes)
    genimg = boxes.genimg_box()
    # cache-reused (chunk, <tasks>) records don't match the solver's input
    # signature; the identity branch carries them straight to the merger
    solve_stage = Parallel(
        placed_split(solver, "node"), Filter.identity("bypass-cached")
    )
    body = Serial(Serial(Serial(splitter, solve_stage), merger), genimg)
    return Network("raytracing_stat", body)


def build_static_2cpu_network(
    backend: RenderBackend,
    scheduler: Optional[Scheduler] = None,
    render_mode: Optional[str] = None,
) -> Network:
    """The static variant with two solver instances per node.

    The paper obtains it "by adding one more index split combinator to the
    solver of Fig. 2 (``(solver!<cpu>)!@<node>``) and marking input data with
    a ``<cpu>`` tag of values 0 and 1".
    """
    boxes = RayTracingBoxes(backend, scheduler, render_mode=render_mode)
    splitter = boxes.static_2cpu_splitter()
    solver = boxes.solver()
    per_cpu = IndexSplit(solver, "cpu")
    merger = build_merger(boxes)
    genimg = boxes.genimg_box()
    # as in build_static_network: cache-reused chunks bypass the solvers
    solve_stage = Parallel(
        placed_split(per_cpu, "node"), Filter.identity("bypass-cached")
    )
    body = Serial(Serial(Serial(splitter, solve_stage), merger), genimg)
    return Network("raytracing_stat_2cpu", body)


def build_dynamic_network(
    backend: RenderBackend,
    scheduler: Optional[Scheduler] = None,
    render_mode: Optional[str] = None,
) -> Network:
    """The dynamically load-balanced network (Fig. 2 with the Fig. 4 segment).

    "This modification of the S-NET solution presented so far can be achieved
    by simply replacing the ``solver@<node>`` component from Figure 2 by the
    network segment shown in Figure 4.  Since the remaining part of the S-NET
    ... is oblivious of the node tag, it can be utilised in the dynamic
    setting without modification."
    """
    boxes = RayTracingBoxes(backend, scheduler, render_mode=render_mode)
    splitter = boxes.dynamic_splitter()
    solver_segment = build_solver_segment(boxes)
    merger = build_merger(boxes)
    genimg = boxes.genimg_box()
    body = Serial(Serial(Serial(splitter, solver_segment), merger), genimg)
    return Network("raytracing_dyn", body)
