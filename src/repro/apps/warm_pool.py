"""A keyed pool of warm render runtimes: LRU + TTL eviction, eager teardown.

:class:`WarmPoolManager` generalises the render service's original
single-slot-per-scene cache into the shape of SNIPPETS.md Snippet 3
(ModelOps): a bounded pool of *warm slots* behind the existing
``Transport``/``RenderBackend`` port seams, keyed by whatever identifies a
reusable runtime — the service keys by
``(runtime backend, scene content hash, farm variant)``.

Each slot owns the expensive parts of one render pipeline (prepared scene,
render backend with its shared frame segment, built network, a runtime whose
``setup()`` already forked its pool / node workers).  The pool's job is the
*lifecycle*:

* ``acquire(key, build)`` returns the warm slot for ``key`` (building it
  cold via ``build()`` on a miss) and leases it to the caller;
* ``release(slot)`` returns the lease and stamps the idle clock;
* **LRU** — inserting beyond ``capacity`` evicts the least-recently-used
  *idle* slot immediately;
* **TTL** — slots idle longer than ``ttl`` seconds are evicted by a
  background sweeper (or an explicit :meth:`sweep`);
* **eager teardown** — an evicted slot's runtime is torn down and its
  backend released *at eviction time*, not at :meth:`close`:
  ``/dev/shm`` frame segments and forked workers are freed the moment the
  pool stops caring about the slot (``tests/apps/test_warm_pool.py`` pins
  this with a leak guard mirroring ``test_shared_memory_plane.py``).

Slots that are currently leased (``busy``) are never evicted; they become
eviction candidates again on release.  The pool is thread-safe: the service
scheduler leases slots while the sweeper evicts idle ones concurrently.

>>> pool = WarmPoolManager(capacity=2)
>>> class Probe:
...     def __init__(self): self.down = False
...     def teardown(self): self.down = True
>>> def build():
...     return {"runtime": Probe(), "backend": None}
>>> slot, warm = pool.acquire("a", build)
>>> warm, pool.stats()["cold_builds"]
(False, 1)
>>> pool.release(slot)
>>> pool.acquire("a", build)[1]  # second acquire: warm
True
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

__all__ = ["WarmPoolManager", "WarmSlot"]


@dataclass
class WarmSlot:
    """One warm runtime leased out by the pool.

    ``parts`` holds whatever the build callable returned; the conventional
    keys (``scene``, ``backend``, ``network``, ``runtime``,
    ``setup_seconds``) are exposed as attributes for convenience.
    """

    key: Hashable
    parts: Mapping[str, Any] = field(repr=False)
    setup_seconds: float = 0.0
    jobs_served: int = 0
    #: watermark of the runtime's cumulative ``recoveries`` counter after
    #: the last served job, so node deaths handled *between* jobs (the
    #: warm revive path runs on a link receiver thread) are still
    #: attributed to the next job instead of slipping between two deltas
    recoveries_seen: int = 0
    last_used: float = 0.0
    busy: bool = False

    def __getattr__(self, name: str) -> Any:
        try:
            return self.parts[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no attribute {name!r}"
            ) from None


class WarmPoolManager:
    """Bounded keyed pool of warm slots with LRU + TTL eviction.

    Parameters
    ----------
    capacity:
        Maximum number of warm slots kept alive.  Inserting a cold-built
        slot beyond this evicts (and eagerly tears down) the
        least-recently-used idle slot.
    ttl:
        Idle seconds after which a slot is evicted.  ``None`` disables
        time-based eviction (LRU only).
    clock:
        Monotonic time source — injectable so the TTL rules are testable
        without sleeping.
    sweep_interval:
        Period of the background TTL sweeper; defaults to ``ttl / 4``
        (bounded to [0.05, 1.0] seconds).  Only started when ``ttl`` is set
        and ``clock`` is the real one; a test driving a fake clock calls
        :meth:`sweep` explicitly.
    """

    def __init__(
        self,
        capacity: int = 4,
        *,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sweep_interval: Optional[float] = None,
    ):
        if capacity < 1:
            raise ValueError("warm pool capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._slots: "OrderedDict[Hashable, WarmSlot]" = OrderedDict()
        self._lock = threading.Condition()
        self._closed = False
        self._warm_hits = 0
        self._cold_builds = 0
        self._evictions_lru = 0
        self._evictions_ttl = 0
        self._setup_seconds_total = 0.0
        self._setup_seconds_saved = 0.0
        self._sweeper: Optional[threading.Thread] = None
        if ttl is not None and clock is time.monotonic:
            interval = sweep_interval
            if interval is None:
                interval = min(1.0, max(0.05, ttl / 4.0))
            self._sweep_interval = interval
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="warm-pool-sweeper", daemon=True
            )
            self._sweeper.start()

    # -- leasing --------------------------------------------------------------
    def acquire(
        self, key: Hashable, build: Callable[[], Mapping[str, Any]]
    ) -> Tuple[WarmSlot, bool]:
        """Lease the warm slot for ``key``; cold-build it via ``build()`` on a miss.

        Returns ``(slot, warm)`` — ``warm`` is ``True`` when the slot already
        existed.  The lease blocks eviction until :meth:`release`.  Acquiring
        a key whose slot is already leased raises ``RuntimeError`` — the pool
        serves single-dispatcher schedulers (one job executes at a time), not
        concurrent executions of the same key.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("acquire on a closed WarmPoolManager")
            slot = self._slots.get(key)
            if slot is not None:
                if slot.busy:
                    raise RuntimeError(
                        f"warm slot {key!r} is already leased; the pool serves "
                        "one execution per key at a time"
                    )
                slot.busy = True
                self._slots.move_to_end(key)
                self._warm_hits += 1
                self._setup_seconds_saved += slot.setup_seconds
                return slot, True
        # cold build outside the lock: forking pools / rendering-scale BVH
        # builds must not block the TTL sweeper or other keys' acquires
        parts = dict(build())
        with self._lock:
            slot = WarmSlot(
                key=key,
                parts=parts,
                setup_seconds=float(parts.get("setup_seconds", 0.0)),
                last_used=self._clock(),
                busy=True,
            )
            self._cold_builds += 1
            self._setup_seconds_total += slot.setup_seconds
            self._slots[key] = slot
            evicted = self._trim_locked()
        for victim in evicted:
            self._teardown(victim)
        return slot, False

    def release(self, slot: WarmSlot) -> None:
        """Return a lease: the slot becomes idle (and evictable) now."""
        evicted: List[WarmSlot] = []
        with self._lock:
            slot.busy = False
            slot.last_used = self._clock()
            if self._closed or slot.key not in self._slots:
                # the pool stopped caring while the slot was leased
                evicted.append(self._slots.pop(slot.key, None) or slot)
            self._lock.notify_all()
        for victim in evicted:
            self._teardown(victim)

    # -- eviction -------------------------------------------------------------
    def sweep(self, now: Optional[float] = None) -> int:
        """Evict every idle slot older than ``ttl``; returns how many."""
        if self.ttl is None:
            return 0
        if now is None:
            now = self._clock()
        victims: List[WarmSlot] = []
        with self._lock:
            for key, slot in list(self._slots.items()):
                if not slot.busy and now - slot.last_used > self.ttl:
                    victims.append(self._slots.pop(key))
                    self._evictions_ttl += 1
        for slot in victims:
            self._teardown(slot)
        return len(victims)

    def discard(self, key: Hashable) -> bool:
        """Evict ``key`` now (idle slots only); returns whether it existed."""
        with self._lock:
            slot = self._slots.get(key)
            if slot is None or slot.busy:
                return False
            del self._slots[key]
        self._teardown(slot)
        return True

    def adopt(
        self, new_key: Hashable, match: Callable[[WarmSlot], bool]
    ) -> Optional[WarmSlot]:
        """Re-key the first idle slot satisfying ``match`` to ``new_key``.

        In-place scene edits change the scene's content key, which would
        orphan the warm slot built for the pre-edit key even though its
        runtime *is* the right one (the live scene object inside it was
        edited).  ``adopt`` lets the caller migrate such a slot to the
        post-edit key instead of cold-building a duplicate.  No-op (returns
        the existing slot) when ``new_key`` is already present; returns
        ``None`` when no idle slot matches.
        """
        with self._lock:
            if self._closed:
                return None
            existing = self._slots.get(new_key)
            if existing is not None:
                return existing
            for key, slot in list(self._slots.items()):
                if slot.busy or not match(slot):
                    continue
                del self._slots[key]
                slot.key = new_key
                self._slots[new_key] = slot
                return slot
        return None

    def _trim_locked(self) -> List[WarmSlot]:
        """Pop LRU-excess idle slots (caller holds the lock, tears down after)."""
        victims: List[WarmSlot] = []
        idle = [k for k, s in self._slots.items() if not s.busy]
        while len(self._slots) > self.capacity and idle:
            key = idle.pop(0)
            victims.append(self._slots.pop(key))
            self._evictions_lru += 1
        return victims

    @staticmethod
    def _teardown(slot: WarmSlot) -> None:
        """Eagerly release everything the slot owns.

        The runtime goes first (terminate forked workers / node processes),
        the backend last (unlink the shared frame segment) — and the backend
        is released even when the runtime teardown raises, so a misbehaving
        pool can never leak ``/dev/shm`` segments.
        """
        runtime = slot.parts.get("runtime")
        backend = slot.parts.get("backend")
        try:
            teardown = getattr(runtime, "teardown", None)
            if callable(teardown):
                teardown()
        finally:
            release = getattr(backend, "release", None)
            if callable(release):
                release()

    def _sweep_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                self._lock.wait(self._sweep_interval)
                if self._closed:
                    return
            try:
                self.sweep()
            except Exception:  # pragma: no cover - sweeper must never die
                pass

    # -- lifecycle / introspection --------------------------------------------
    def close(self) -> None:
        """Tear down every idle slot and stop the sweeper.  Idempotent.

        Slots still leased at close are torn down by their :meth:`release`.
        """
        with self._lock:
            self._closed = True
            victims = [
                self._slots.pop(key)
                for key, slot in list(self._slots.items())
                if not slot.busy
            ]
            self._lock.notify_all()
        for slot in victims:
            self._teardown(slot)
        if self._sweeper is not None and self._sweeper is not threading.current_thread():
            self._sweeper.join(timeout=5.0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def slots(self) -> "OrderedDict[Hashable, WarmSlot]":
        """A consistent snapshot of the key -> slot mapping (LRU order)."""
        with self._lock:
            return OrderedDict(self._slots)

    def stats(self) -> Dict[str, Any]:
        """A consistent snapshot of the pool counters (JSON-friendly)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "ttl": self.ttl,
                "slots": len(self._slots),
                "busy": sum(1 for s in self._slots.values() if s.busy),
                "warm_hits": self._warm_hits,
                "cold_builds": self._cold_builds,
                "evictions_lru": self._evictions_lru,
                "evictions_ttl": self._evictions_ttl,
                "setup_seconds_total": self._setup_seconds_total,
                "setup_seconds_saved": self._setup_seconds_saved,
            }
