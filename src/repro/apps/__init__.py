"""The paper's applications: ray tracing under MPI and under S-Net.

* :mod:`repro.apps.backends` -- render backends: the *real* backend renders
  pixels with :mod:`repro.raytracer`; the *model* backend produces
  placeholder chunks and per-section costs for the simulated experiments.
* :mod:`repro.apps.boxes` -- the box functions (splitter, solver, init,
  merge, genImg) shared by all S-Net variants.
* :mod:`repro.apps.merger` -- the merger sub-network of Fig. 3.
* :mod:`repro.apps.networks` -- the static (Fig. 2), static 2-CPU and
  dynamically load-balanced (Fig. 4) networks, plus the paper's textual
  S-Net sources for them.
* :mod:`repro.apps.mpi_baseline` -- the hand-written MPI fork/join ray
  tracer the paper compares against.
* :mod:`repro.apps.workloads` -- input-record construction and result
  extraction helpers.
* :mod:`repro.apps.runner` -- run any farm variant on a named runtime
  backend (``threaded`` / ``process``) via the runtime registry.
* :mod:`repro.apps.service` -- the persistent render-farm service: a
  keyed warm-runtime pool, weighted-fair multi-tenant scheduling and
  structured latency observability.
* :mod:`repro.apps.warm_pool` -- the bounded LRU+TTL pool of warm
  runtimes behind the service, with eager teardown on eviction.
* :mod:`repro.apps.gateway` -- the asyncio front door: JSON-lines over
  TCP, per-tenant token-bucket admission and retry-after rejections.
"""

from repro.apps.backends import (
    ModelRenderBackend,
    RealRenderBackend,
    RenderBackend,
    SharedFrameRenderBackend,
)
from repro.apps.boxes import RayTracingBoxes
from repro.apps.merger import build_merger
from repro.apps.networks import (
    FIG2_SOURCE,
    FIG3_MERGER_SOURCE,
    FIG4_SOLVER_SOURCE,
    build_dynamic_network,
    build_static_2cpu_network,
    build_static_network,
)
from repro.apps.gateway import (
    GatewayClient,
    RenderGateway,
    TenantPolicy,
    TokenBucket,
    decode_image,
)
from repro.apps.mpi_baseline import mpi_raytracer_program, run_mpi_raytracer
from repro.apps.runner import (
    FARM_VARIANTS,
    FarmRun,
    WarmRuntimeParts,
    build_warm_runtime,
    run_raytracing_farm,
)
from repro.apps.service import (
    JobResult,
    LatencyHistogram,
    RenderJob,
    RenderService,
    ServiceClosed,
    ServiceMetrics,
    ServiceOverloaded,
    WeightedFairQueue,
    scene_content_key,
)
from repro.apps.warm_pool import WarmPoolManager, WarmSlot
from repro.apps.workloads import (
    StormRequest,
    animation_scenes,
    dynamic_input_records,
    extract_image,
    initial_record,
    scene_from_spec,
    tenant_job_storm,
)

__all__ = [
    "RenderBackend",
    "RealRenderBackend",
    "SharedFrameRenderBackend",
    "ModelRenderBackend",
    "RayTracingBoxes",
    "build_merger",
    "build_static_network",
    "build_static_2cpu_network",
    "build_dynamic_network",
    "FIG2_SOURCE",
    "FIG3_MERGER_SOURCE",
    "FIG4_SOLVER_SOURCE",
    "mpi_raytracer_program",
    "run_mpi_raytracer",
    "FarmRun",
    "FARM_VARIANTS",
    "run_raytracing_farm",
    "WarmRuntimeParts",
    "build_warm_runtime",
    "RenderService",
    "RenderJob",
    "JobResult",
    "ServiceMetrics",
    "ServiceClosed",
    "ServiceOverloaded",
    "WeightedFairQueue",
    "LatencyHistogram",
    "scene_content_key",
    "WarmPoolManager",
    "WarmSlot",
    "RenderGateway",
    "GatewayClient",
    "TenantPolicy",
    "TokenBucket",
    "decode_image",
    "initial_record",
    "dynamic_input_records",
    "animation_scenes",
    "scene_from_spec",
    "StormRequest",
    "tenant_job_storm",
    "extract_image",
]
