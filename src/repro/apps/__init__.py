"""The paper's applications: ray tracing under MPI and under S-Net.

* :mod:`repro.apps.backends` -- render backends: the *real* backend renders
  pixels with :mod:`repro.raytracer`; the *model* backend produces
  placeholder chunks and per-section costs for the simulated experiments.
* :mod:`repro.apps.boxes` -- the box functions (splitter, solver, init,
  merge, genImg) shared by all S-Net variants.
* :mod:`repro.apps.merger` -- the merger sub-network of Fig. 3.
* :mod:`repro.apps.networks` -- the static (Fig. 2), static 2-CPU and
  dynamically load-balanced (Fig. 4) networks, plus the paper's textual
  S-Net sources for them.
* :mod:`repro.apps.mpi_baseline` -- the hand-written MPI fork/join ray
  tracer the paper compares against.
* :mod:`repro.apps.workloads` -- input-record construction and result
  extraction helpers.
* :mod:`repro.apps.runner` -- run any farm variant on a named runtime
  backend (``threaded`` / ``process``) via the runtime registry.
* :mod:`repro.apps.service` -- the persistent render-farm service: warm
  runtime reuse, a content-hash scene cache and priority job scheduling
  with backpressure.
"""

from repro.apps.backends import (
    ModelRenderBackend,
    RealRenderBackend,
    RenderBackend,
    SharedFrameRenderBackend,
)
from repro.apps.boxes import RayTracingBoxes
from repro.apps.merger import build_merger
from repro.apps.networks import (
    FIG2_SOURCE,
    FIG3_MERGER_SOURCE,
    FIG4_SOLVER_SOURCE,
    build_dynamic_network,
    build_static_2cpu_network,
    build_static_network,
)
from repro.apps.mpi_baseline import mpi_raytracer_program, run_mpi_raytracer
from repro.apps.runner import FARM_VARIANTS, FarmRun, run_raytracing_farm
from repro.apps.service import (
    JobResult,
    RenderJob,
    RenderService,
    ServiceClosed,
    ServiceMetrics,
    ServiceOverloaded,
    scene_content_key,
)
from repro.apps.workloads import (
    animation_scenes,
    dynamic_input_records,
    extract_image,
    initial_record,
)

__all__ = [
    "RenderBackend",
    "RealRenderBackend",
    "SharedFrameRenderBackend",
    "ModelRenderBackend",
    "RayTracingBoxes",
    "build_merger",
    "build_static_network",
    "build_static_2cpu_network",
    "build_dynamic_network",
    "FIG2_SOURCE",
    "FIG3_MERGER_SOURCE",
    "FIG4_SOLVER_SOURCE",
    "mpi_raytracer_program",
    "run_mpi_raytracer",
    "FarmRun",
    "FARM_VARIANTS",
    "run_raytracing_farm",
    "RenderService",
    "RenderJob",
    "JobResult",
    "ServiceMetrics",
    "ServiceClosed",
    "ServiceOverloaded",
    "scene_content_key",
    "initial_record",
    "dynamic_input_records",
    "animation_scenes",
    "extract_image",
]
