"""The box functions of the ray-tracing application.

These are the "algorithm engineering" half of the paper's methodology: plain
functions over value parameters, with no knowledge of concurrency, placement
or scheduling.  The concurrency engineering half — how they are composed —
lives in :mod:`repro.apps.merger` and :mod:`repro.apps.networks`.

Five boxes are defined (exactly the ones of Figs. 2–4):

``splitter``
    divides the image into sections according to a scheduler and emits one
    record per section; in the static variants every section carries a
    ``<node>`` (and optionally ``<cpu>``) tag, in the dynamic variant only
    the first ``<tokens>`` sections do;
``solver``
    renders one section into a chunk;
``init``
    creates the accumulator picture from the first chunk (tagged ``<fst>``);
``merge``
    inserts a further chunk into the accumulator picture;
``genImg``
    writes the finished picture.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.apps.backends import RenderBackend
from repro.raytracer.tracer import check_render_mode
from repro.scheduling.base import EditedSection, Scheduler, Section, validate_sections
from repro.scheduling.block import BlockScheduler
from repro.snet.boxes import Box
from repro.snet.records import Record

__all__ = ["RayTracingBoxes"]


class RayTracingBoxes:
    """Factory for the application's boxes over a given render backend.

    Parameters
    ----------
    backend:
        The render backend (real or model).
    scheduler:
        How the splitter divides the image into sections.  Defaults to block
        scheduling with as many sections as there are ``<tasks>``.
    render_mode:
        Optional override of the backend's rendering strategy
        (``"scalar"`` | ``"packet"``); ``None`` leaves the backend's own
        mode untouched.  Backends without a mode knob (the model backend)
        ignore the override.
    """

    def __init__(
        self,
        backend: RenderBackend,
        scheduler: Optional[Scheduler] = None,
        render_mode: Optional[str] = None,
    ):
        self.backend = backend
        self.scheduler = scheduler
        if render_mode is not None and hasattr(backend, "render_mode"):
            backend.render_mode = check_render_mode(render_mode)

    # -- section generation ------------------------------------------------
    def _sections(self, num_tasks: int) -> List[Section]:
        scheduler = self.scheduler or BlockScheduler(num_tasks)
        sections = scheduler.sections(self.backend.height)
        validate_sections(sections, self.backend.height)
        return sections

    def _split_records(self, scene, sections) -> List[dict]:
        """Base records for one job: cached chunks or renderable sections.

        Consults the backend's temporal tile cache
        (:meth:`~repro.apps.backends.RenderBackend.plan_job`): sections
        provably unaffected by the scene edits since the cached frame are
        emitted as ready ``(chunk, <tasks>)`` records that short-circuit
        straight past the solvers to the merger; the rest are emitted as the
        usual ``(scene, sect, <tasks>)`` records, with the journal entries a
        stale fork worker needs riding along inside an
        :class:`~repro.scheduling.base.EditedSection`.  The caller adds its
        variant-specific placement tags to the renderable records.

        Record ``index 0`` carries ``<fst>`` either way, and ``<tasks>``
        counts *all* sections, so the merger's completion arithmetic is
        untouched by reuse.
        """
        backend = self.backend
        reuse = backend.plan_job(scene, sections)
        edits = backend.edits_to_ship(scene)
        total = len(sections)
        records: List[dict] = []
        for section in sections:
            cached = reuse.get(section.index)
            if cached is not None:
                entries = {"chunk": cached, "<tasks>": total}
            else:
                if edits:
                    section = EditedSection(
                        section.index, section.y_start, section.y_end, edits=edits
                    )
                entries = {"scene": scene, "sect": section, "<tasks>": total}
            if section.index == 0:
                entries["<fst>"] = 1
            records.append(entries)
        return records

    # -- splitter variants ---------------------------------------------------
    def static_splitter(self) -> Box:
        """Splitter of Fig. 2: every section is assigned to a node up front.

        Sections are dealt round-robin over the ``<nodes>`` compute nodes.
        The first section additionally carries ``<fst>``.
        """
        backend = self.backend
        boxes = self

        def splitter(scene, nodes, tasks, out):
            sections = boxes._sections(tasks)
            for entries in boxes._split_records(scene, sections):
                if "sect" in entries:
                    entries["<node>"] = entries["sect"].index % nodes
                out(entries)

        return Box(
            "splitter",
            "(scene, <nodes>, <tasks>) -> (scene, sect, <node>, <tasks>, <fst>)"
            " | (scene, sect, <node>, <tasks>)"
            " | (chunk, <tasks>, <fst>)"
            " | (chunk, <tasks>)",
            splitter,
            cost=lambda rec: backend.scene_load_cost() + backend.split_cost(),
            parallel_safe=False,  # control logic; not worth shipping the scene out
        )

    def static_2cpu_splitter(self) -> Box:
        """Splitter for the 2-CPU static variant: adds a ``<cpu>`` tag (0/1).

        Sections are dealt so that consecutive sections land on the same node
        but alternate CPUs, mirroring "marking input data with a <cpu> tag of
        values 0 and 1" in the paper.
        """
        backend = self.backend
        boxes = self

        def splitter(scene, nodes, tasks, out):
            sections = boxes._sections(tasks)
            for entries in boxes._split_records(scene, sections):
                sect = entries.get("sect")
                if sect is not None:
                    entries["<node>"] = (sect.index // 2) % nodes
                    entries["<cpu>"] = sect.index % 2
                out(entries)

        return Box(
            "splitter",
            "(scene, <nodes>, <tasks>) -> (scene, sect, <node>, <cpu>, <tasks>, <fst>)"
            " | (scene, sect, <node>, <cpu>, <tasks>)"
            " | (chunk, <tasks>, <fst>)"
            " | (chunk, <tasks>)",
            splitter,
            cost=lambda rec: backend.scene_load_cost() + backend.split_cost(),
            parallel_safe=False,
        )

    def dynamic_splitter(self) -> Box:
        """Splitter for the dynamically scheduled variant (Section IV-B).

        Only the first ``<tokens>`` sections carry a ``<node>`` tag (the
        initial tokens); the remaining sections queue inside the solver
        segment until a token is released by a completed section.

        Token values are distinct, so every token owns its own solver
        replica and several replicas on the same node can use all of its
        CPUs.  They are dealt so that the *physical* nodes initially receive
        contiguous bands of the image: when ``tokens == tasks`` this
        degenerates into exactly the blocked static distribution whose load
        imbalance the paper identifies as the bad case for the dynamic
        scheduler.
        """
        backend = self.backend
        boxes = self

        def splitter(scene, nodes, tasks, tokens, out):
            sections = boxes._sections(tasks)
            per_node = max(1, -(-tokens // nodes))  # ceil(tokens / nodes)
            rank = 0  # tokens are dealt over *renderable* sections only:
            # cached sections never enter the solver segment, so giving them
            # tokens would strand concurrency on skipped work
            for entries in boxes._split_records(scene, sections):
                if "sect" in entries:
                    if rank < tokens:
                        # distinct abstract node ids; the distributed runtime
                        # maps them onto physical nodes modulo the cluster
                        # size (like MPI ranks with several ranks per node),
                        # so consecutive sections initially land on the same
                        # node until that node's token quota is exhausted
                        slot = rank % per_node
                        node = rank // per_node
                        entries["<node>"] = slot * nodes + node
                    rank += 1
                out(entries)

        return Box(
            "splitter",
            "(scene, <nodes>, <tasks>, <tokens>)"
            " -> (scene, sect, <node>, <tasks>, <fst>)"
            " | (scene, sect, <node>, <tasks>)"
            " | (scene, sect, <tasks>)"
            " | (chunk, <tasks>, <fst>)"
            " | (chunk, <tasks>)",
            splitter,
            cost=lambda rec: backend.scene_load_cost() + backend.split_cost(),
            parallel_safe=False,
        )

    # -- solver ---------------------------------------------------------------
    def solver(self) -> Box:
        """The solver box of Fig. 2: render one section into a chunk."""
        backend = self.backend

        def solve(scene, sect):
            return {"chunk": backend.render_section(sect)}

        return Box(
            "solver",
            "(scene, sect) -> (chunk)",
            solve,
            cost=lambda rec: backend.section_cost(rec.field("sect")),
        )

    # -- merger boxes ------------------------------------------------------------
    def init_box(self) -> Box:
        """The init box of Fig. 3: first chunk becomes the accumulator picture."""
        backend = self.backend

        def init(chunk, fst):
            return {"pic": backend.init_picture(chunk)}

        return Box(
            "init",
            "(chunk, <fst>) -> (pic)",
            init,
            cost=lambda rec: backend.picture_copy_cost(),
            # merger boxes stay in-process: round-tripping the accumulator
            # picture through the pool would cost more than the merge itself
            parallel_safe=False,
        )

    def merge_box(self) -> Box:
        """The merge box of Fig. 3: insert one more chunk into the picture."""
        backend = self.backend

        def merge(chunk, pic):
            return {"pic": backend.merge(pic, chunk)}

        return Box(
            "merge",
            "(chunk, pic) -> (pic)",
            merge,
            # the backend owns the merge strategy (copy-per-merge in the
            # paper's model, in-place or shared-frame bookkeeping on the
            # executing backends) and therefore also its modelled cost
            cost=lambda rec: backend.merge_cost(rec.field("chunk")),
            parallel_safe=False,
        )

    def genimg_box(self) -> Box:
        """The genImg box of Fig. 2: write the completed picture to a file."""
        backend = self.backend

        def genimg(pic):
            backend.write_image(pic)
            # every section (fresh or cache-reused) has passed the merger by
            # now: promote this frame's tile summaries to the cross-job cache
            backend.finish_job()
            return None

        return Box(
            "genImg",
            "(pic) -> ()",
            genimg,
            cost=lambda rec: backend.image_write_cost(),
            # the caller observes genImg through backend.saved_images, so it
            # must execute in the coordinating process
            parallel_safe=False,
        )

    # -- environment for the textual front-end -----------------------------------
    def environment(self, dynamic: bool = False, two_cpu: bool = False) -> dict:
        """A name -> Box mapping usable as a builder :class:`BoxEnvironment`."""
        if dynamic:
            splitter = self.dynamic_splitter()
        elif two_cpu:
            splitter = self.static_2cpu_splitter()
        else:
            splitter = self.static_splitter()
        return {
            "splitter": splitter,
            "solver": self.solver(),
            "solve": self.solver(),
            "init": self.init_box(),
            "merge": self.merge_box(),
            "genImg": self.genimg_box(),
        }
