"""Input-record construction, workloads and result extraction for the farms.

Besides the paper's one-shot inputs (:func:`initial_record`,
:func:`dynamic_input_records`), this module defines the *animation* workload
driving the persistent render service: :func:`animation_scenes` produces the
keyframes of a looping animation as content-deterministic scenes, so a
service replaying the loop hits its scene cache from the second pass on.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.apps.backends import RenderBackend
from repro.raytracer.geometry.primitives import Sphere
from repro.raytracer.materials import Material
from repro.raytracer.scene import Scene, random_scene
from repro.raytracer.vec import vec3
from repro.snet.records import Record

__all__ = [
    "initial_record",
    "dynamic_input_records",
    "animation_scenes",
    "extract_image",
]


def initial_record(scene: Scene, nodes: int, tasks: int) -> Record:
    """The single input record of the static networks: ``{scene,<nodes>,<tasks>}``."""
    if nodes < 1 or tasks < 1:
        raise ValueError("nodes and tasks must both be at least 1")
    return Record({"scene": scene, "<nodes>": nodes, "<tasks>": tasks})


def dynamic_input_records(
    scene: Scene, nodes: int, tasks: int, tokens: int
) -> List[Record]:
    """The input of the dynamic network: one record carrying the token count.

    The paper controls the dynamic variant with two knobs — the number of
    tasks (sections) and the number of node tokens initially released; both
    travel as tags on the single input record.
    """
    if tokens < 1 or tokens > tasks:
        raise ValueError(
            f"the number of tokens ({tokens}) must be between 1 and the number "
            f"of tasks ({tasks})"
        )
    return [
        Record(
            {"scene": scene, "<nodes>": nodes, "<tasks>": tasks, "<tokens>": tokens}
        )
    ]


def animation_scenes(
    frames: int,
    *,
    num_spheres: int = 60,
    clustering: float = 0.5,
    seed: int = 11,
    orbit_radius: float = 1.6,
    orbit_depth: float = 1.5,
) -> List[Scene]:
    """Keyframe scenes of a looping animation: a mirror sphere orbits the set.

    Frame ``i`` is the deterministic base scene (``random_scene`` with the
    given ``num_spheres``/``clustering``/``seed``) plus one large reflective
    sphere at phase ``2*pi*i/frames`` of a circular orbit in front of the
    camera.  Every call builds *fresh* scene objects, but frame ``i`` is
    content-identical across calls — so a render service streaming the loop
    repeatedly (``frames`` distinct cache keys) pays one cold setup per
    keyframe on the first pass and serves every later pass warm.

    Returns a list of ``frames`` independent :class:`Scene` objects.

    >>> a, b = animation_scenes(2, num_spheres=3)
    >>> len(a.objects) == len(b.objects) and a is not b
    True
    >>> from repro.apps.service import scene_content_key
    >>> scene_content_key(animation_scenes(2, num_spheres=3)[1]) == scene_content_key(b)
    True
    """
    if frames < 1:
        raise ValueError("an animation needs at least one frame")
    scenes: List[Scene] = []
    for i in range(frames):
        scene = random_scene(
            num_spheres=num_spheres, clustering=clustering, seed=seed
        )
        phase = 2.0 * math.pi * i / frames
        center = vec3(
            orbit_radius * math.cos(phase),
            0.4 + 0.5 * math.sin(phase),
            -orbit_depth + 0.8 * math.sin(phase),
        )
        scene.add(Sphere(center, 0.45, Material.mirror(0.9)))
        scenes.append(scene)
    return scenes


def extract_image(backend: RenderBackend) -> Any:
    """Return the picture written by ``genImg`` during the last run."""
    if not backend.saved_images:
        raise ValueError(
            "genImg never fired: the network produced no completed picture"
        )
    return backend.saved_images[-1]
