"""Input-record construction and result extraction for the S-Net variants."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.apps.backends import RenderBackend
from repro.raytracer.scene import Scene
from repro.snet.records import Record

__all__ = ["initial_record", "dynamic_input_records", "extract_image"]


def initial_record(scene: Scene, nodes: int, tasks: int) -> Record:
    """The single input record of the static networks: ``{scene,<nodes>,<tasks>}``."""
    if nodes < 1 or tasks < 1:
        raise ValueError("nodes and tasks must both be at least 1")
    return Record({"scene": scene, "<nodes>": nodes, "<tasks>": tasks})


def dynamic_input_records(
    scene: Scene, nodes: int, tasks: int, tokens: int
) -> List[Record]:
    """The input of the dynamic network: one record carrying the token count.

    The paper controls the dynamic variant with two knobs — the number of
    tasks (sections) and the number of node tokens initially released; both
    travel as tags on the single input record.
    """
    if tokens < 1 or tokens > tasks:
        raise ValueError(
            f"the number of tokens ({tokens}) must be between 1 and the number "
            f"of tasks ({tasks})"
        )
    return [
        Record(
            {"scene": scene, "<nodes>": nodes, "<tasks>": tasks, "<tokens>": tokens}
        )
    ]


def extract_image(backend: RenderBackend) -> Any:
    """Return the picture written by ``genImg`` during the last run."""
    if not backend.saved_images:
        raise ValueError(
            "genImg never fired: the network produced no completed picture"
        )
    return backend.saved_images[-1]
