"""Input-record construction, workloads and result extraction for the farms.

Besides the paper's one-shot inputs (:func:`initial_record`,
:func:`dynamic_input_records`), this module defines the *animation* workload
driving the persistent render service: :func:`animation_scenes` produces the
keyframes of a looping animation as content-deterministic scenes, so a
service replaying the loop hits its scene cache from the second pass on.

Two more builders feed the multi-tenant front door
(:mod:`repro.apps.gateway`): :func:`scene_from_spec` turns a wire-friendly
JSON dict into a content-deterministic :class:`Scene`, and
:func:`tenant_job_storm` produces the skewed multi-tenant arrival schedules
the load/fairness benchmarks replay.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.apps.backends import RenderBackend
from repro.raytracer.geometry.primitives import Sphere
from repro.raytracer.materials import Material
from repro.raytracer.scene import Scene, paper_scene, random_scene
from repro.raytracer.vec import vec3
from repro.snet.records import Record

__all__ = [
    "initial_record",
    "dynamic_input_records",
    "AnimationSequence",
    "animation_scenes",
    "scene_from_spec",
    "StormRequest",
    "tenant_job_storm",
    "extract_image",
]


def initial_record(scene: Scene, nodes: int, tasks: int) -> Record:
    """The single input record of the static networks: ``{scene,<nodes>,<tasks>}``."""
    if nodes < 1 or tasks < 1:
        raise ValueError("nodes and tasks must both be at least 1")
    return Record({"scene": scene, "<nodes>": nodes, "<tasks>": tasks})


def dynamic_input_records(
    scene: Scene, nodes: int, tasks: int, tokens: int
) -> List[Record]:
    """The input of the dynamic network: one record carrying the token count.

    The paper controls the dynamic variant with two knobs — the number of
    tasks (sections) and the number of node tokens initially released; both
    travel as tags on the single input record.
    """
    if tokens < 1 or tokens > tasks:
        raise ValueError(
            f"the number of tokens ({tokens}) must be between 1 and the number "
            f"of tasks ({tasks})"
        )
    return [
        Record(
            {"scene": scene, "<nodes>": nodes, "<tasks>": tasks, "<tokens>": tokens}
        )
    ]


class AnimationSequence:
    """The looping-animation keyframes as in-place edits of **one** scene.

    The pre-PR-10 animation workload rebuilt the whole scene per keyframe;
    with the mutation journal the natural phrasing is a single live scene
    whose orbiter moves between frames through :meth:`Scene.begin_edit
    <repro.raytracer.scene.Scene.begin_edit>`.  ``seq[i]`` *seeks*: it
    commits an ``update`` moving the orbiter to frame ``i``'s phase and
    returns the (shared) scene object, so a warm render slot holding this
    scene re-renders only the tiles the move can affect.

    Indexing is list-like (``len``, negative indices, iteration) and frame
    ``i`` is content-identical to the rebuilt frame ``i`` of
    ``animation_scenes(..., rebuild=True)`` — the journal keeps the memoised
    content key in sync with in-place edits.
    """

    def __init__(
        self,
        frames: int,
        *,
        num_spheres: int = 60,
        clustering: float = 0.5,
        seed: int = 11,
        orbit_radius: float = 1.6,
        orbit_depth: float = 1.5,
    ):
        if frames < 1:
            raise ValueError("an animation needs at least one frame")
        self.frames = frames
        self.orbit_radius = orbit_radius
        self.orbit_depth = orbit_depth
        self.scene = random_scene(
            num_spheres=num_spheres, clustering=clustering, seed=seed
        )
        self.orbiter = Sphere(self._center(0), 0.45, Material.mirror(0.9))
        edit = self.scene.begin_edit()
        edit.add(self.orbiter)
        edit.commit()
        self._frame = 0

    def _center(self, i: int) -> Any:
        phase = 2.0 * math.pi * i / self.frames
        return vec3(
            self.orbit_radius * math.cos(phase),
            0.4 + 0.5 * math.sin(phase),
            -self.orbit_depth + 0.8 * math.sin(phase),
        )

    def __len__(self) -> int:
        return self.frames

    def __getitem__(self, i: int) -> Scene:
        if i < 0:
            i += self.frames
        if not 0 <= i < self.frames:
            raise IndexError(f"frame {i} outside [0, {self.frames})")
        if i != self._frame:
            edit = self.scene.begin_edit()
            edit.update(self.orbiter, center=self._center(i))
            edit.commit()
            self._frame = i
        return self.scene

    def __iter__(self):
        for i in range(self.frames):
            yield self[i]


def animation_scenes(
    frames: int,
    *,
    num_spheres: int = 60,
    clustering: float = 0.5,
    seed: int = 11,
    orbit_radius: float = 1.6,
    orbit_depth: float = 1.5,
    rebuild: bool = False,
) -> Sequence[Scene]:
    """Keyframes of a looping animation: a mirror sphere orbits the set.

    Frame ``i`` is the deterministic base scene (``random_scene`` with the
    given ``num_spheres``/``clustering``/``seed``) plus one large reflective
    sphere at phase ``2*pi*i/frames`` of a circular orbit in front of the
    camera.

    By default the frames are served by an :class:`AnimationSequence` — one
    live scene edited in place between frames, the shape the temporal tile
    cache accelerates.  ``rebuild=True`` restores the historical behaviour:
    a list of ``frames`` independent, freshly built :class:`Scene` objects
    (so a service replaying the loop exercises its *scene cache* with
    ``frames`` distinct content keys instead of editing one slot).  Frame
    ``i`` is content-identical between the two modes:

    >>> seq = animation_scenes(2, num_spheres=3)
    >>> seq[0] is seq[1]  # one live scene, edited in place between frames
    True
    >>> legacy = animation_scenes(2, num_spheres=3, rebuild=True)
    >>> legacy[0] is not legacy[1]
    True
    >>> from repro.apps.service import scene_content_key
    >>> scene_content_key(seq[1]) == scene_content_key(legacy[1])
    True
    >>> scene_content_key(seq[0]) == scene_content_key(legacy[0])
    True
    """
    if not rebuild:
        return AnimationSequence(
            frames,
            num_spheres=num_spheres,
            clustering=clustering,
            seed=seed,
            orbit_radius=orbit_radius,
            orbit_depth=orbit_depth,
        )
    if frames < 1:
        raise ValueError("an animation needs at least one frame")
    scenes: List[Scene] = []
    for i in range(frames):
        scene = random_scene(
            num_spheres=num_spheres, clustering=clustering, seed=seed
        )
        phase = 2.0 * math.pi * i / frames
        center = vec3(
            orbit_radius * math.cos(phase),
            0.4 + 0.5 * math.sin(phase),
            -orbit_depth + 0.8 * math.sin(phase),
        )
        scene.add(Sphere(center, 0.45, Material.mirror(0.9)))
        scenes.append(scene)
    return scenes


def scene_from_spec(spec: Mapping[str, Any]) -> Scene:
    """Build a scene from a wire-friendly JSON description.

    This is the gateway's scene vocabulary: requests name scenes by *content*
    (kind + parameters), never by Python object, so the same spec sent twice
    — from different connections, processes or hosts — produces
    content-identical scenes and therefore hits the same warm-pool slot
    (:func:`repro.apps.service.scene_content_key` hashes content, not
    identity).

    Supported kinds:

    ``{"kind": "random", "num_spheres": N, "seed": S, "clustering": C}``
        :func:`repro.raytracer.scene.random_scene` (defaults 8 / 7 / 0.5).
    ``{"kind": "paper", "num_spheres": N}``
        :func:`repro.raytracer.scene.paper_scene` (default 300).
    ``{"kind": "animation", "frames": F, "frame": I, "num_spheres": N}``
        Keyframe ``I`` of :func:`animation_scenes` over ``F`` frames.

    >>> from repro.apps.service import scene_content_key
    >>> a = scene_from_spec({"kind": "random", "num_spheres": 4, "seed": 3})
    >>> b = scene_from_spec({"kind": "random", "num_spheres": 4, "seed": 3})
    >>> a is not b and scene_content_key(a) == scene_content_key(b)
    True
    """
    if not isinstance(spec, Mapping):
        raise TypeError(f"scene spec must be a mapping, got {spec!r}")
    kind = spec.get("kind", "random")
    if kind == "random":
        return random_scene(
            num_spheres=int(spec.get("num_spheres", 8)),
            clustering=float(spec.get("clustering", 0.5)),
            seed=int(spec.get("seed", 7)),
        )
    if kind == "paper":
        return paper_scene(num_spheres=int(spec.get("num_spheres", 300)))
    if kind == "animation":
        frames = int(spec.get("frames", 4))
        frame = int(spec.get("frame", 0))
        if not 0 <= frame < frames:
            raise ValueError(
                f"animation frame {frame} outside [0, {frames}) for spec {spec!r}"
            )
        return animation_scenes(
            frames,
            num_spheres=int(spec.get("num_spheres", 60)),
            seed=int(spec.get("seed", 11)),
        )[frame]
    raise ValueError(
        f"unknown scene kind {kind!r}; supported: random, paper, animation"
    )


@dataclass
class StormRequest:
    """One arrival in a synthetic job storm.

    ``at`` is the arrival offset in seconds from the storm start; ``scene``
    is a :func:`scene_from_spec` dict (wire-friendly, content-deterministic).
    """

    at: float
    tenant: str
    scene: Dict[str, Any]
    priority: int = 0


def tenant_job_storm(
    rates: Mapping[str, float],
    *,
    requests_total: int,
    scene_specs: Sequence[Mapping[str, Any]],
    seed: int = 0,
) -> List[StormRequest]:
    """A deterministic multi-tenant arrival schedule with skewed rates.

    Each tenant emits jobs as a Poisson process at its rate (jobs/second,
    exponential interarrivals from a seeded RNG); tenants rotate through the
    shared ``scene_specs`` independently, so a handful of distinct scenes is
    revisited storm-wide — the access pattern a warm pool exists for.  The
    global schedule is truncated to the ``requests_total`` earliest arrivals
    and returned sorted by arrival time.

    >>> storm = tenant_job_storm(
    ...     {"a": 4.0, "b": 1.0}, requests_total=10,
    ...     scene_specs=[{"kind": "random", "num_spheres": 3}], seed=1)
    >>> len(storm), storm == sorted(storm, key=lambda r: r.at)
    (10, True)
    >>> sum(r.tenant == "a" for r in storm) > sum(r.tenant == "b" for r in storm)
    True
    """
    if requests_total < 1:
        raise ValueError("requests_total must be at least 1")
    if not scene_specs:
        raise ValueError("the storm needs at least one scene spec")
    for tenant, rate in rates.items():
        if rate <= 0:
            raise ValueError(f"tenant {tenant!r} needs a positive rate, got {rate}")
    rng = random.Random(seed)
    arrivals: List[StormRequest] = []
    # enough arrivals per tenant that truncation keeps the rate skew intact
    per_tenant = requests_total + 1
    for tenant in sorted(rates):
        clock = 0.0
        for i in range(per_tenant):
            clock += rng.expovariate(rates[tenant])
            arrivals.append(
                StormRequest(
                    at=clock,
                    tenant=tenant,
                    scene=dict(scene_specs[i % len(scene_specs)]),
                )
            )
    arrivals.sort(key=lambda req: (req.at, req.tenant))
    return arrivals[:requests_total]


def extract_image(backend: RenderBackend) -> Any:
    """Return the picture written by ``genImg`` during the last run."""
    if not backend.saved_images:
        raise ValueError(
            "genImg never fired: the network produced no completed picture"
        )
    return backend.saved_images[-1]
