"""The production front door: an asyncio gateway over :class:`RenderService`.

The paper's runtime was driven by a single benchmark loop; a farm serving
many tenants needs an *admission layer* in front of the service.  This
module adds one with stdlib asyncio only — no HTTP framework — speaking
newline-delimited JSON over TCP (one JSON object per line, responses
correlated by an echoed ``id``, pipelining allowed):

* **per-tenant token-bucket quotas** — each tenant is admitted at its
  configured rate/burst (:class:`TokenBucket`); over-rate requests are
  *rejected immediately* with a structured ``retry_after`` instead of
  queueing, so a flooding tenant cannot grow the queue for everyone else;
* **bounded per-tenant concurrency** — at most ``max_pending`` jobs of one
  tenant may be in flight through the gateway;
* **weighted-fair scheduling** — admitted jobs carry their tenant into
  :class:`~repro.apps.service.RenderService`, whose
  :class:`~repro.apps.service.WeightedFairQueue` dispatches across tenants
  by weight (``TenantPolicy.weight``), never starving a backlogged tenant;
* **admission control, never blocking** — the gateway requires the
  service's ``overflow="reject"`` policy: a full service queue surfaces as
  a structured rejection with ``retry_after``, not a blocked event loop;
* **observability** — the ``metrics`` op returns the gateway's admission
  counters plus the service's full
  :meth:`~repro.apps.service.RenderService.observability` payload
  (per-stage latency histograms, per-tenant queue depths, warm-pool,
  recovery and temporal-tile-cache counters — the ``incremental`` section's
  ``tiles_reused``/``rays_saved``) as one JSON document; render responses
  carry the same two counters per job.

Wire protocol (all examples are single lines)::

    -> {"op": "render", "id": 1, "tenant": "alice",
        "scene": {"kind": "random", "num_spheres": 8, "seed": 5},
        "tasks": 4, "nodes": 2, "priority": 0, "return_image": false}
    <- {"status": "ok", "id": 1, "tenant": "alice", "warm": true,
        "seconds": 0.04, "queued_seconds": 0.01, "scene_key": "...",
        "image_sha256": "...", "shape": [24, 24, 3]}

    -> {"op": "render", "id": 2, "tenant": "flood", ...}
    <- {"status": "rejected", "id": 2, "error": "rate_limited",
        "retry_after": 0.31}

    -> {"op": "metrics", "id": 3}
    <- {"status": "ok", "id": 3, "gateway": {...}, "service": {...}}

Scenes travel as :func:`repro.apps.workloads.scene_from_spec` dicts —
content-deterministic, so the same spec from any connection lands on the
same warm-pool slot.  ``return_image: true`` adds the frame itself
(``image_b64``: base64 of the float64 pixel buffer) for pixel-exactness
checks; by default only the SHA-256 of the pixels crosses the wire.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.apps.service import RenderJob, RenderService, ServiceOverloaded
from repro.apps.workloads import scene_from_spec

__all__ = [
    "TenantPolicy",
    "TokenBucket",
    "RenderGateway",
    "GatewayClient",
    "decode_image",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy of one tenant at the gateway.

    ``weight`` feeds the service's weighted-fair dispatch; ``rate``/``burst``
    parameterize the token bucket (``rate=None`` disables rate limiting);
    ``max_pending`` bounds the tenant's jobs in flight through the gateway.
    """

    weight: float = 1.0
    rate: Optional[float] = None
    burst: float = 8.0
    max_pending: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if self.burst < 1:
            raise ValueError("burst must be at least 1 token")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")


class TokenBucket:
    """A token bucket: ``rate`` tokens/second up to a ``burst`` ceiling.

    ``try_acquire`` never blocks: it either consumes a token or returns the
    *finite* number of seconds after which the same request will succeed —
    the contract behind the gateway's structured ``retry_after`` rejections
    (``tests/apps/test_fairness.py`` pins it for random rates and request
    patterns).  The clock is injectable so quota behaviour is testable
    without sleeping.

    >>> clock = iter([0.0, 0.0, 0.0, 2.0]).__next__
    >>> bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
    >>> bucket.try_acquire()
    (True, 0.0)
    >>> granted, retry = bucket.try_acquire()  # bucket empty at t=0
    >>> granted, retry
    (False, 1.0)
    >>> bucket.try_acquire()  # t=2.0: refilled
    (True, 0.0)
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 8.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst < 1:
            raise ValueError("burst must be at least 1 token")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Consume ``tokens`` if available: ``(granted, retry_after_seconds)``."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if self.rate is None:
            return True, 0.0
        if tokens > self.burst:
            raise ValueError(
                f"requested {tokens} tokens exceeds the burst ceiling "
                f"{self.burst}: this request could never be admitted"
            )
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        # grant within a nanotoken tolerance: clock/rate float rounding must
        # never turn an honored retry_after hint into a second denial
        if self._tokens + 1e-9 >= tokens:
            self._tokens = max(0.0, self._tokens - tokens)
            return True, 0.0
        deficit = tokens - self._tokens
        retry = deficit / self.rate
        # the hint must be *sufficient*: waiting exactly retry seconds has to
        # refill the deficit, so nudge up until the product survives rounding
        while retry * self.rate < deficit:
            retry = math.nextafter(retry, math.inf)
        return False, retry


def decode_image(response: Dict[str, Any]) -> np.ndarray:
    """Decode the ``image_b64`` payload of a ``return_image`` response."""
    if "image_b64" not in response:
        raise ValueError("response carries no image; request return_image=true")
    raw = base64.b64decode(response["image_b64"])
    return np.frombuffer(raw, dtype=np.float64).reshape(response["shape"]).copy()


class RenderGateway:
    """Asyncio TCP front door translating JSON requests into service futures.

    The gateway owns (or wraps) a :class:`RenderService` whose ``overflow``
    policy must be ``"reject"`` — admission decisions must never block the
    event loop.  Constructed with ``service=None`` it builds its own service
    from ``service_kwargs``, deriving ``tenant_weights`` from the tenant
    policies.  The server runs on a dedicated thread; :meth:`start` returns
    once the socket is listening (``gateway.port`` is then bound, supporting
    ``port=0`` ephemeral ports), and :meth:`close` stops accepting, lets
    in-flight requests drain, and closes an owned service.  Use as a context
    manager::

        with RenderGateway(width=24, height=24,
                           tenants={"a": TenantPolicy(weight=3.0)}) as gw:
            reply = GatewayClient(gw.host, gw.port).render(
                {"kind": "random", "num_spheres": 4}, tenant="a")
    """

    def __init__(
        self,
        service: Optional[RenderService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
        default_policy: Optional[TenantPolicy] = None,
        drain_timeout: float = 30.0,
        scene_cache_size: int = 32,
        **service_kwargs: Any,
    ):
        self._policies = dict(tenants or {})
        self._default_policy = default_policy or TenantPolicy()
        if service is None:
            service_kwargs.setdefault(
                "tenant_weights",
                {name: policy.weight for name, policy in self._policies.items()},
            )
            service_kwargs.setdefault("overflow", "reject")
            service = RenderService(**service_kwargs)
            self._owns_service = True
        else:
            if service_kwargs:
                raise ValueError(
                    "service_kwargs are only accepted when the gateway builds "
                    "its own service"
                )
            self._owns_service = False
        if service.overflow != "reject":
            raise ValueError(
                "the gateway requires a RenderService with overflow='reject': "
                "admission control must reject with retry-after, not block "
                "the event loop"
            )
        self.service = service
        self.host = host
        self.port = port  # rebound to the real port once listening
        self._drain_timeout = drain_timeout
        self._scene_cache: "OrderedDict[str, Any]" = OrderedDict()
        self._scene_cache_size = scene_cache_size

        # event-loop-confined state (handlers run on the loop thread only)
        self._buckets: Dict[str, TokenBucket] = {}
        self._pending: Dict[str, int] = {}
        self._tenant_counters: Dict[str, Dict[str, int]] = {}
        self._avg_seconds = 0.05  # EMA of served job seconds (retry hints)
        self._requests = 0
        self._rejected = 0
        self._errors = 0

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "RenderGateway":
        """Start serving; returns once the socket is listening."""
        if self._thread is not None:
            return self
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(started)),
            name="render-gateway",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(30.0):
            raise RuntimeError("gateway failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join(5.0)
            raise RuntimeError("gateway failed to start") from self._startup_error
        return self

    def close(self, timeout: float = 60.0) -> None:
        """Stop accepting, drain in-flight requests, close an owned service."""
        if self._thread is not None and self._thread.is_alive():
            assert self._loop is not None and self._stop is not None
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout)
        if self._owns_service:
            self.service.close(timeout=timeout)

    def __enter__(self) -> "RenderGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    async def _main(self, started: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle, self.host, self.port)
        except BaseException as exc:
            self._startup_error = exc
            started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        started.set()
        async with server:
            await self._stop.wait()
        # graceful drain: connections already accepted finish their replies
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=self._drain_timeout)

    # -- connection handling ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        request_tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # pipelining: each request is served concurrently; responses
                # are correlated by the echoed id, not by ordering
                sub = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                request_tasks.add(sub)
                sub.add_done_callback(request_tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if request_tasks:
                await asyncio.wait(request_tasks, timeout=self._drain_timeout)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError:
            await self._reply(
                writer, write_lock,
                {"status": "error", "error": "bad_request",
                 "message": "each line must be one JSON object"},
            )
            return
        response = await self._dispatch(payload)
        if payload.get("id") is not None:
            response.setdefault("id", payload["id"])
        await self._reply(writer, write_lock, response)

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        data = json.dumps(response, separators=(",", ":")).encode() + b"\n"
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request dispatch -------------------------------------------------------
    async def _dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op", "render")
        self._requests += 1
        if op == "ping":
            return {"status": "ok", "pong": True}
        if op == "metrics":
            return {
                "status": "ok",
                "gateway": self.gateway_metrics(),
                "service": self.service.observability(),
            }
        if op == "render":
            return await self._render(payload)
        self._errors += 1
        return {
            "status": "error",
            "error": "unknown_op",
            "message": f"unknown op {op!r}; supported: render, metrics, ping",
        }

    def _policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default_policy)

    def _counters(self, tenant: str) -> Dict[str, int]:
        return self._tenant_counters.setdefault(
            tenant,
            {"requests": 0, "admitted": 0, "served": 0, "failed": 0,
             "rejected_rate": 0, "rejected_pending": 0, "rejected_overload": 0},
        )

    def _reject(
        self, tenant: str, error: str, retry_after: float, counter: str
    ) -> Dict[str, Any]:
        self._rejected += 1
        self._counters(tenant)[counter] += 1
        return {
            "status": "rejected",
            "tenant": tenant,
            "error": error,
            # a finite, positive hint: clients always know when to come back
            # (rounded *up* to the microsecond so honoring it is sufficient)
            "retry_after": math.ceil(max(0.001, retry_after) * 1e6) / 1e6,
        }

    async def _render(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = str(payload.get("tenant", "default"))
        policy = self._policy(tenant)
        counters = self._counters(tenant)
        counters["requests"] += 1

        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(policy.rate, policy.burst)
        granted, retry_after = bucket.try_acquire()
        if not granted:
            return self._reject(tenant, "rate_limited", retry_after,
                                "rejected_rate")
        if self._pending.get(tenant, 0) >= policy.max_pending:
            return self._reject(
                tenant, "too_many_pending",
                self._avg_seconds * self._pending.get(tenant, 0),
                "rejected_pending",
            )

        try:
            scene = self._scene(payload.get("scene") or {})
            job = RenderJob(
                scene=scene,
                tenant=tenant,
                nodes=int(payload.get("nodes", 2)),
                tasks=int(payload.get("tasks", 4)),
                tokens=payload.get("tokens"),
                variant=str(payload.get("variant", "static")),
                priority=int(payload.get("priority", 0)),
                label=payload.get("label"),
            )
            future = self.service.submit(job)
        except ServiceOverloaded:
            backlog = self.service.metrics().queue_depth
            return self._reject(
                tenant, "service_overloaded",
                self._avg_seconds * max(1, backlog), "rejected_overload",
            )
        except (TypeError, ValueError) as exc:
            self._errors += 1
            return {"status": "error", "error": "bad_request",
                    "tenant": tenant, "message": str(exc)}

        counters["admitted"] += 1
        self._pending[tenant] = self._pending.get(tenant, 0) + 1
        try:
            result = await asyncio.wrap_future(future)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            counters["failed"] += 1
            self._errors += 1
            return {"status": "error", "error": "job_failed",
                    "tenant": tenant, "message": str(exc)}
        finally:
            remaining = self._pending.get(tenant, 1) - 1
            if remaining > 0:
                self._pending[tenant] = remaining
            else:
                self._pending.pop(tenant, None)

        counters["served"] += 1
        self._avg_seconds += 0.2 * (result.seconds - self._avg_seconds)
        pixels = np.ascontiguousarray(result.image)
        response: Dict[str, Any] = {
            "status": "ok",
            "tenant": tenant,
            "label": result.job.label,
            "warm": result.warm,
            "seconds": result.seconds,
            "queued_seconds": result.queued_seconds,
            "scene_key": result.scene_key,
            "rays_cast": result.rays_cast,
            "tiles_reused": result.tiles_reused,
            "rays_saved": result.rays_saved,
            "node_recoveries": result.node_recoveries,
            "shape": list(pixels.shape),
            "image_sha256": hashlib.sha256(pixels.tobytes()).hexdigest(),
        }
        if payload.get("return_image"):
            response["image_b64"] = base64.b64encode(pixels.tobytes()).decode()
        return response

    def _scene(self, spec: Dict[str, Any]) -> Any:
        """Build (or reuse) the scene for a spec.

        The cache only saves re-running the scene generator: warm-pool hits
        do not depend on it, because :func:`scene_content_key` hashes scene
        *content* and :func:`scene_from_spec` is content-deterministic.
        """
        cache_key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        scene = self._scene_cache.get(cache_key)
        if scene is None:
            scene = scene_from_spec(spec)
            self._scene_cache[cache_key] = scene
            while len(self._scene_cache) > self._scene_cache_size:
                self._scene_cache.popitem(last=False)
        else:
            self._scene_cache.move_to_end(cache_key)
        return scene

    # -- observability ----------------------------------------------------------
    def gateway_metrics(self) -> Dict[str, Any]:
        """The gateway-side admission counters (JSON-friendly).

        Note: mutated on the event-loop thread; calling from other threads
        yields a momentary view, which is what a metrics endpoint needs.
        """
        return {
            "requests": self._requests,
            "rejected": self._rejected,
            "errors": self._errors,
            "avg_render_seconds": self._avg_seconds,
            "pending": dict(self._pending),
            "tenants": {
                tenant: dict(counters)
                for tenant, counters in sorted(self._tenant_counters.items())
            },
        }


class GatewayClient:
    """A small synchronous client for the gateway's JSON-lines protocol.

    ``request`` is the simple call-response path; ``send``/``recv`` expose
    pipelining (fire many requests, then collect responses correlated by
    ``id``) for the load benchmarks.  One client per thread — the socket is
    not internally locked.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._ids = 0

    def send(self, payload: Dict[str, Any]) -> Any:
        """Fire one request without waiting; returns its correlation id."""
        if "id" not in payload:
            self._ids += 1
            payload = {**payload, "id": self._ids}
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        return payload["id"]

    def recv(self) -> Dict[str, Any]:
        """Read one response line (any outstanding id)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return json.loads(line)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Call-response convenience (no other requests may be outstanding)."""
        request_id = self.send(payload)
        response = self.recv()
        if response.get("id") not in (None, request_id):
            raise RuntimeError(
                f"out-of-band response {response.get('id')!r} while waiting "
                f"for {request_id!r}; use send()/recv() for pipelining"
            )
        return response

    def render(
        self, scene: Dict[str, Any], *, tenant: str = "default", **options: Any
    ) -> Dict[str, Any]:
        return self.request({"op": "render", "tenant": tenant,
                             "scene": scene, **options})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
