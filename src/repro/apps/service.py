"""A persistent render-farm service with warm-runtime job scheduling.

:func:`repro.apps.runner.run_raytracing_farm` is the paper's evaluation
shape: one shot, full runtime construction per call — process-pool fork,
scene broadcast into the fork-shared registry, shared-memory frame
registration — all paid before the first ray is cast.  A render farm that
serves many jobs cannot afford that; :class:`RenderService` keeps the
expensive parts alive *between* jobs:

* **runtime lifecycle reuse** — per cached scene the service holds a *warm
  slot*: the render backend (including its shared frame buffer), the built
  network, and a runtime set up once via the engines' ``setup()``/
  ``teardown()`` split (:meth:`ProcessRuntime.setup
  <repro.snet.runtime.process_engine.ProcessRuntime.setup>` forks the pool
  once, with the scene already broadcast);
* **a multi-tenant job scheduler** — ``submit(job)`` returns a
  :class:`concurrent.futures.Future`; dispatch across tenants is
  weighted-fair (:class:`WeightedFairQueue`: no backlogged tenant starves,
  completed-work shares track ``tenant_weights``), jobs within one tenant
  execute FIFO within priority (higher ``RenderJob.priority`` first), and a
  bounded queue applies backpressure with a selectable ``overflow`` policy
  (``"block"`` the submitter, or ``"reject"`` with
  :class:`ServiceOverloaded`);
* **a warm pool** — slots live in a
  :class:`~repro.apps.warm_pool.WarmPoolManager` keyed by
  ``(runtime backend, scene content hash, variant)``
  (:func:`scene_content_key` hashes content, so a replayed animation
  keyframe from :func:`repro.apps.workloads.animation_scenes` skips scene
  preparation, broadcast registration and pool re-fork entirely), bounded
  by LRU + idle-TTL eviction with *eager* teardown — an evicted slot's
  forked workers and ``/dev/shm`` frame segment are released at eviction
  time, not at :meth:`~RenderService.close`;
* **structured observability** — :meth:`RenderService.metrics` reports jobs
  served, queue depth and p50/p95 queue wait, warm-hit rate and the setup
  seconds the pool saved; :meth:`RenderService.observability` exports the
  full JSON view (per-stage latency histograms, per-tenant queue depths and
  counters, warm-pool and recovery counters) that the
  :mod:`repro.apps.gateway` front door serves to clients.

The service boundary and the ``try_get`` contract
-------------------------------------------------

The job queue is a real S-Net :class:`~repro.snet.runtime.stream.Stream` of
job records, and the scheduler loop leans on the two distinct ``None``
meanings of the stream API (see :meth:`Stream.try_get
<repro.snet.runtime.stream.Stream.try_get>`):

* ``try_get() -> None`` means **"empty right now"** — the service uses it
  only to *top up* the priority heap with whatever is already queued, so an
  idle moment must never be mistaken for shutdown;
* ``get() -> None`` is the **definitive end-of-stream** — it fires only
  once :meth:`close` has closed the writer *and* the queue has drained, so
  every job accepted before ``close()`` still executes (drain-then-stop).

``tests/apps/test_render_service.py`` pins both halves of this contract.

Example
-------

>>> from repro.raytracer.scene import random_scene
>>> scene = random_scene(num_spheres=3)
>>> with RenderService(width=16, height=16, render_mode="packet") as service:
...     first = service.submit(RenderJob(scene, nodes=2, tasks=2)).result(60)
...     second = service.submit(RenderJob(scene, nodes=2, tasks=2)).result(60)
>>> first.image.shape, first.warm, second.warm
((16, 16, 3), False, True)
>>> service.metrics().warm_hits
1
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.runner import (
    FARM_VARIANTS,
    build_warm_runtime,
    farm_inputs,
    resolve_data_plane,
)
from repro.apps.warm_pool import WarmPoolManager, WarmSlot
from repro.apps.workloads import extract_image
from repro.raytracer.mutation import scene_content_key
from repro.raytracer.scene import Scene
from repro.scheduling.base import Scheduler
from repro.snet.records import Record
from repro.snet.runtime import run_on
from repro.snet.runtime.stream import Stream

__all__ = [
    "RenderService",
    "RenderJob",
    "JobResult",
    "ServiceMetrics",
    "ServiceClosed",
    "ServiceOverloaded",
    "LatencyHistogram",
    "WeightedFairQueue",
    "scene_content_key",
]


class ServiceClosed(RuntimeError):
    """Submitting to (or waiting on) a service that has been closed."""


class ServiceOverloaded(RuntimeError):
    """The bounded job queue is full and the overflow policy is ``"reject"``."""


# -- scene content hashing ----------------------------------------------------
# scene_content_key lives with the mutation journal now (the journal updates
# the memoised key in O(delta) on every commit); the service re-exports it
# unchanged for its historical import path.


# -- observability: per-stage latency histograms ------------------------------
class LatencyHistogram:
    """A fixed-bucket log-scale latency histogram (seconds).

    Buckets double from 100 µs to ~400 s plus an overflow bucket, so one
    histogram covers queue waits, setups and renders alike with bounded
    memory and no per-sample allocation.  Percentiles interpolate linearly
    inside the winning bucket (clamped to the observed min/max), which is
    plenty for p50/p95 service bars.  Instances are *not* internally locked —
    the service mutates its histograms under the service lock.

    >>> hist = LatencyHistogram()
    >>> for ms in range(1, 101):
    ...     hist.add(ms / 1000.0)
    >>> 0.04 < hist.percentile(0.5) < 0.06 and 0.09 < hist.percentile(0.95) < 0.1
    True
    """

    #: upper bounds of the finite buckets: 1e-4 * 2**i seconds
    BOUNDS = tuple(1e-4 * 2.0**i for i in range(22))

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = 0
        while index < len(self.BOUNDS) and seconds > self.BOUNDS[index]:
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``); 0.0 while empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be within (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = 0.0 if index == 0 else self.BOUNDS[index - 1]
                upper = self.BOUNDS[index] if index < len(self.BOUNDS) else self.max
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            seen += bucket_count
        return self.max  # pragma: no cover - rank <= count always lands above

    def to_json(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot (non-empty buckets only)."""
        return {
            "count": self.count,
            "sum_seconds": self.sum,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "p50": self.percentile(0.5),
            "p95": self.percentile(0.95),
            "buckets": [
                {
                    "le": self.BOUNDS[i] if i < len(self.BOUNDS) else "inf",
                    "count": c,
                }
                for i, c in enumerate(self.counts)
                if c
            ],
        }


# -- weighted-fair cross-tenant dispatch --------------------------------------
class WeightedFairQueue:
    """Weighted-fair dispatch across tenants (start-time fair queueing).

    The service's original queue was a single global priority heap — one
    tenant flooding high-priority jobs starves everyone else.  This queue
    keeps **per-tenant** FIFO-within-priority heaps and interleaves *between*
    tenants by virtual time: dispatching one unit of work from tenant ``t``
    advances ``t``'s virtual finish tag by ``cost / weight(t)``, and the
    tenant whose head-of-line job has the earliest finish tag runs next.  A
    tenant that was idle re-enters at the current virtual time (no credit
    accumulates while idle), and a backlogged tenant's tag grows every time
    it is served — so every backlogged tenant is dispatched within a bounded
    number of rounds regardless of the others' weights or priorities
    (``tests/apps/test_fairness.py`` pins both properties under
    hypothesis-generated schedules).

    Priorities keep their PR 4 meaning *within* a tenant: higher
    ``RenderJob.priority`` first, FIFO within equal priority.  With a single
    tenant the queue therefore degenerates to exactly the old global order.

    >>> wfq = WeightedFairQueue({"a": 3.0, "b": 1.0})
    >>> for seq in range(4):
    ...     wfq.push("a", (0, seq), f"a{seq}")
    ...     wfq.push("b", (0, 10 + seq), f"b{seq}")
    >>> [wfq.pop()[1] for _ in range(5)]  # a gets ~3 of every 4 dispatches
    ['a0', 'a1', 'a2', 'b0', 'a3']
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant {tenant!r} needs a positive weight, got {weight}"
                )
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._queues: Dict[str, List[Tuple[Tuple[int, int], float, Any]]] = {}
        self._finish: Dict[str, float] = {}
        #: tenant -> (start, finish, order_key) of its *current* head-of-line
        #: job.  Assigned once when the job reaches the head and pinned until
        #: it is dispatched (or displaced by a higher-priority arrival): a
        #: pinned tag cannot slide as the virtual clock advances, so a
        #: backlogged tenant's head is eventually minimal — no starvation.
        self._head_tags: Dict[str, Tuple[float, float, Tuple[int, int]]] = {}
        self._vtime = 0.0
        self._size = 0

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    def push(
        self,
        tenant: str,
        order_key: Tuple[int, int],
        item: Any,
        cost: float = 1.0,
    ) -> None:
        """Queue ``item`` for ``tenant``; ``order_key`` orders within the tenant."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        heapq.heappush(
            self._queues.setdefault(tenant, []), (order_key, cost, item)
        )
        self._size += 1

    def _head_tag(self, tenant: str) -> Tuple[float, float, Tuple[int, int]]:
        order_key, cost, _ = self._queues[tenant][0]
        tag = self._head_tags.get(tenant)
        if tag is not None and tag[2] == order_key:
            return tag
        # a tenant re-entering after an idle period lines up at the current
        # virtual time, not in the past (max with its own last finish keeps a
        # backlogged tenant progressing at rate weight/total)
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        finish = start + cost / self.weight(tenant)
        tag = (start, finish, order_key)
        self._head_tags[tenant] = tag
        return tag

    def pop(self) -> Tuple[str, Any]:
        """Dispatch the next job: ``(tenant, item)``.  Raises on empty."""
        if not self._size:
            raise IndexError("pop from an empty WeightedFairQueue")
        best = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            start, finish, order_key = self._head_tag(tenant)
            candidate = (finish, order_key, tenant, start)
            if best is None or candidate < best:
                best = candidate
        finish, _, tenant, start = best
        _, _, item = heapq.heappop(self._queues[tenant])
        del self._head_tags[tenant]
        self._finish[tenant] = finish
        # the system's virtual time tracks the start tag of the job put in
        # service, so later arrivals cannot be tagged into the past
        self._vtime = max(self._vtime, start)
        self._size -= 1
        return tenant, item

    def backlog(self) -> Dict[str, int]:
        """Queued items per tenant (non-empty tenants only)."""
        return {t: len(q) for t, q in self._queues.items() if q}

    def __len__(self) -> int:
        return self._size


# -- jobs and results ---------------------------------------------------------
@dataclass
class RenderJob:
    """One unit of work for the service: render ``scene`` once.

    ``variant``/``nodes``/``tasks``/``tokens`` mirror the knobs of
    :func:`~repro.apps.runner.run_raytracing_farm`.  ``tenant`` names the
    submitting tenant: dispatch across tenants is weighted-fair (see
    :class:`WeightedFairQueue` and ``RenderService(tenant_weights=...)``),
    and ``priority`` keeps its meaning *within* a tenant — higher values run
    earlier, FIFO within equal priority.  ``label`` is free-form caller
    bookkeeping (e.g. a frame number) echoed on the :class:`JobResult`.
    """

    scene: Scene
    nodes: int = 2
    tasks: int = 8
    tokens: Optional[int] = None
    variant: str = "static"
    priority: int = 0
    tenant: str = "default"
    label: Optional[str] = None


@dataclass
class JobResult:
    """Outcome of one served job (the value of the job's future).

    ``warm`` tells whether the job was served from an existing warm slot
    (scene-cache hit: no scene preparation, no pool fork, no frame-buffer
    registration).  ``seconds`` is pure execution time; ``queued_seconds``
    is the time spent waiting in the queue before execution started.

    ``tiles_reused``/``rays_saved`` report the temporal tile cache's work
    avoidance for this job: sections served from the warm slot's previous
    frame and the rays their cached renders originally cost.  ``rays_cast``
    stays honest — it counts only rays actually traced for this job; the
    avoided rays are reported separately, never subtracted.
    """

    job: RenderJob
    image: Any
    seconds: float
    queued_seconds: float
    warm: bool
    scene_key: str
    rays_cast: int
    bytes_pickled: int
    node_recoveries: int = 0
    tiles_reused: int = 0
    rays_saved: int = 0
    outputs: List[Record] = field(repr=False, default_factory=list)


@dataclass(frozen=True)
class ServiceMetrics:
    """Snapshot of the service counters (see :meth:`RenderService.metrics`).

    The snapshot is taken **atomically under the service lock** (the warm
    pool contributes its own lock-consistent snapshot), so every field
    describes the same instant — counters can never disagree with each other
    by a half-updated job.

    ``queue_depth`` counts jobs accepted but not yet completed (waiting or
    executing); ``tenant_queue_depths`` breaks it down per tenant.
    ``setup_seconds_saved`` charges, for every warm hit, the measured
    cold-build cost of the slot that served it — the wall-clock the warm
    pool avoided.  ``warm_hit_rate`` is warm hits over executed cache
    lookups (0.0 before the first job).  ``queue_p50``/``queue_p95`` are
    queue-wait percentiles from the service's latency histogram (seconds
    between ``submit`` and dispatch).  ``slots_evicted`` counts warm slots
    torn down by LRU or TTL eviction (their runtimes and shared frame
    segments were released *at eviction time*).  ``node_recoveries`` counts
    distributed node workers that died and were failed over or revived
    while serving jobs — a non-zero value means the service stayed up
    through node deaths.  ``tiles_reused``/``rays_saved`` total the temporal
    tile cache's work avoidance across all served jobs (reported separately
    from the honest traced-ray counts, see :class:`JobResult`).
    """

    state: str
    jobs_submitted: int
    jobs_served: int
    jobs_failed: int
    jobs_rejected: int
    jobs_cancelled: int
    queue_depth: int
    warm_hits: int
    cold_builds: int
    warm_hit_rate: float
    setup_seconds_saved: float
    render_seconds: float
    bytes_pickled: int
    scenes_cached: int
    node_recoveries: int
    queue_p50: float = 0.0
    queue_p95: float = 0.0
    slots_evicted: int = 0
    tenant_queue_depths: Dict[str, int] = field(default_factory=dict)
    tiles_reused: int = 0
    rays_saved: int = 0


@dataclass
class _QueuedJob:
    seq: int
    job: RenderJob
    future: Future
    submitted_at: float

    @property
    def order_key(self) -> Tuple[int, int]:
        # within one tenant: higher priority first, FIFO within a priority
        return (-self.job.priority, self.seq)


# -- the service --------------------------------------------------------------
class RenderService:
    """A persistent farm: warm runtimes, a scene cache and a job queue.

    Parameters
    ----------
    runtime:
        Runtime backend name executing the jobs (``"threaded"``,
        ``"process"`` or ``"distributed"``; the simulated backend has no
        warm resources worth a service).  The distributed backend keeps one
        set of compute-node worker processes warm per cached scene — pass
        ``runtime_options={"nodes": N}`` to size it.
    width, height, render_mode, data_plane, scheduler, runtime_options:
        Fixed per service, exactly as for
        :func:`~repro.apps.runner.run_raytracing_farm`; every job renders at
        this resolution.
    max_queue:
        Bound of the job queue (jobs accepted but not yet completed).
    overflow:
        Backpressure policy when the queue is full: ``"block"`` makes
        ``submit`` wait for space, ``"reject"`` raises
        :class:`ServiceOverloaded` immediately.
    max_scenes:
        Warm slots kept alive by the :class:`~repro.apps.warm_pool.
        WarmPoolManager`; beyond this the least-recently-used idle slot is
        torn down *eagerly* (pool terminated, shared frame released — at
        eviction time, not at :meth:`close`).
    slot_ttl:
        Idle seconds after which a warm slot is evicted by the pool's
        background sweeper (``None`` disables time-based eviction): a tenant
        that stopped rendering a scene stops paying for its forked workers.
    tenant_weights:
        Relative dispatch weights per tenant name (default weight 1.0 for
        unlisted tenants): with backlogged tenants ``a``/``b`` at weights
        3/1, ``a`` receives ~3 of every 4 dispatches.  Replaces PR 4's pure
        global priority order; ``RenderJob.priority`` still orders jobs
        *within* a tenant.
    job_timeout:
        Per-job wall-clock deadline handed to the runtime.
    check:
        Static-analysis mode (``"warn"``/``"error"``/``"off"``) forwarded to
        every warm runtime the service creates: each farm network is
        validated once, before its first record flows.  An explicit
        ``runtime_options["check"]`` takes precedence.
    incremental:
        Enables the temporal tile cache (default on): a warm slot whose
        scene is edited *in place* through :meth:`Scene.begin_edit
        <repro.raytracer.scene.Scene.begin_edit>` between jobs re-renders
        only the tiles the edits can affect and serves the rest from the
        previous frame's cache, pixel-identically.  The edited scene's new
        content key is migrated onto the existing slot (lineage adoption)
        instead of cold-building a duplicate.  ``incremental=False``
        restores the render-everything behaviour.

    The service starts accepting jobs immediately; :meth:`close` drains the
    queue and releases every warm slot.  Use as a context manager to
    guarantee teardown.  See the module docstring for a runnable example.
    """

    _STATES = ("running", "draining", "closed")

    def __init__(
        self,
        runtime: str = "threaded",
        *,
        width: int = 64,
        height: int = 64,
        render_mode: Optional[str] = None,
        data_plane: str = "auto",
        scheduler: Optional[Scheduler] = None,
        runtime_options: Optional[Dict[str, Any]] = None,
        max_queue: int = 16,
        overflow: str = "block",
        max_scenes: int = 4,
        slot_ttl: Optional[float] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        job_timeout: float = 300.0,
        check: str = "warn",
        incremental: bool = True,
    ):
        if overflow not in ("block", "reject"):
            raise ValueError(
                f"unknown overflow policy {overflow!r}; use 'block' or 'reject'"
            )
        if check not in ("warn", "error", "off"):
            raise ValueError(
                f"unknown check mode {check!r}; use 'warn', 'error' or 'off'"
            )
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_scenes < 1:
            raise ValueError("max_scenes must be at least 1")
        self.runtime_name = runtime
        self.width = width
        self.height = height
        self.render_mode = render_mode
        self.scheduler = scheduler
        self.runtime_options = dict(runtime_options or {})
        # static network validation mode for every warm runtime the service
        # creates; an explicit runtime_options["check"] wins
        self.runtime_options.setdefault("check", check)
        self.max_queue = max_queue
        self.overflow = overflow
        self.max_scenes = max_scenes
        self.job_timeout = job_timeout
        self.incremental = bool(incremental)
        self.tenant_weights = dict(tenant_weights or {})
        self._plane = resolve_data_plane(data_plane, runtime)

        # the service boundary: a bounded S-Net stream of job records.  Its
        # capacity exceeds max_queue so writer.put never blocks while the
        # submit-side condition variable enforces the *policy* bound.
        self._jobs = Stream(name="render-service-jobs", capacity=max_queue + 2)
        self._writer = self._jobs.open_writer()
        self._cv = threading.Condition()
        self._seq = itertools.count()
        self._depth = 0
        self._closing = False
        self._cancel_pending = False
        self._state = "running"

        self._pool = WarmPoolManager(capacity=max_scenes, ttl=slot_ttl)

        # counters (all mutated under _cv)
        self._jobs_submitted = 0
        self._jobs_served = 0
        self._jobs_failed = 0
        self._jobs_rejected = 0
        self._jobs_cancelled = 0
        self._warm_hits = 0
        self._cold_builds = 0
        self._setup_seconds_saved = 0.0
        self._render_seconds = 0.0
        self._bytes_pickled = 0
        self._node_recoveries = 0
        self._tiles_reused = 0
        self._rays_saved = 0
        self._tenant_depth: Dict[str, int] = {}
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        # per-stage latency histograms (all mutated under _cv)
        self._hist_queue = LatencyHistogram()
        self._hist_setup = LatencyHistogram()
        self._hist_render = LatencyHistogram()
        self._tenant_queue_hist: Dict[str, LatencyHistogram] = {}

        self._thread = threading.Thread(
            target=self._scheduler_loop, name="render-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- public API ----------------------------------------------------------
    def submit(self, job: RenderJob) -> "Future[JobResult]":
        """Queue ``job`` and return a future resolving to its :class:`JobResult`.

        Raises :class:`ServiceClosed` after :meth:`close`, and — queue full —
        either blocks (``overflow="block"``) or raises
        :class:`ServiceOverloaded` (``overflow="reject"``).  The future
        supports ``cancel()`` while the job is still queued.
        """
        if job.variant not in FARM_VARIANTS:
            raise ValueError(
                f"unknown farm variant {job.variant!r}; available: "
                + ", ".join(sorted(FARM_VARIANTS))
            )
        if not isinstance(job.scene, Scene):
            raise TypeError(f"RenderJob.scene must be a Scene, got {job.scene!r}")
        future: "Future[JobResult]" = Future()
        with self._cv:
            while True:
                if self._closing:
                    raise ServiceClosed("submit on a closed RenderService")
                if self._depth < self.max_queue:
                    break
                if self.overflow == "reject":
                    self._jobs_rejected += 1
                    self._tenant_stat(job.tenant, "rejected")
                    raise ServiceOverloaded(
                        f"job queue is full ({self.max_queue} jobs pending) and "
                        "the overflow policy is 'reject'"
                    )
                self._cv.wait()
            self._depth += 1
            self._jobs_submitted += 1
            self._tenant_depth[job.tenant] = self._tenant_depth.get(job.tenant, 0) + 1
            self._tenant_stat(job.tenant, "submitted")
            entry = _QueuedJob(
                seq=next(self._seq),
                job=job,
                future=future,
                submitted_at=time.perf_counter(),
            )
            # priority rides as a tag so the queue reads like any S-Net stream
            self._writer.put(Record({"job": entry, "<priority>": int(job.priority)}))
        return future

    def _tenant_stat(self, tenant: str, key: str, count: int = 1) -> None:
        """Bump a per-tenant counter (caller holds ``_cv``)."""
        stats = self._tenant_stats.setdefault(
            tenant, {"submitted": 0, "served": 0, "failed": 0, "rejected": 0,
                     "cancelled": 0}
        )
        stats[key] += count

    def render(self, job: RenderJob, timeout: Optional[float] = None) -> JobResult:
        """Synchronous convenience: ``submit(job).result(timeout)``."""
        return self.submit(job).result(timeout)

    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of the service counters.

        Everything is read under the service lock in one critical section
        (the warm pool's contribution is its own lock-consistent snapshot):
        no field of the returned :class:`ServiceMetrics` can reflect a
        different instant than the others.
        """
        pool = self._pool.stats()  # pool-lock-consistent, taken first
        with self._cv:
            lookups = self._warm_hits + self._cold_builds
            return ServiceMetrics(
                state=self._state,
                jobs_submitted=self._jobs_submitted,
                jobs_served=self._jobs_served,
                jobs_failed=self._jobs_failed,
                jobs_rejected=self._jobs_rejected,
                jobs_cancelled=self._jobs_cancelled,
                queue_depth=self._depth,
                warm_hits=self._warm_hits,
                cold_builds=self._cold_builds,
                warm_hit_rate=self._warm_hits / lookups if lookups else 0.0,
                setup_seconds_saved=self._setup_seconds_saved,
                render_seconds=self._render_seconds,
                bytes_pickled=self._bytes_pickled,
                scenes_cached=pool["slots"],
                node_recoveries=self._node_recoveries,
                queue_p50=self._hist_queue.percentile(0.5),
                queue_p95=self._hist_queue.percentile(0.95),
                slots_evicted=pool["evictions_lru"] + pool["evictions_ttl"],
                tenant_queue_depths={
                    t: d for t, d in self._tenant_depth.items() if d
                },
                tiles_reused=self._tiles_reused,
                rays_saved=self._rays_saved,
            )

    def observability(self) -> Dict[str, Any]:
        """Structured observability as a JSON-friendly dict.

        The production view of the service: per-stage latency histograms
        (queue wait, cold setup, render), queue depths and counters per
        tenant (including per-tenant queue-wait percentiles), the warm
        pool's hit/eviction counters, and the byte/recovery counters.  The
        gateway serves exactly this payload on its ``metrics`` op.
        """
        pool = self._pool.stats()
        with self._cv:
            lookups = self._warm_hits + self._cold_builds
            tenants: Dict[str, Any] = {}
            names = set(self._tenant_stats) | set(self._tenant_queue_hist)
            for tenant in sorted(names):
                stats = dict(
                    self._tenant_stats.get(
                        tenant,
                        {"submitted": 0, "served": 0, "failed": 0,
                         "rejected": 0, "cancelled": 0},
                    )
                )
                stats["queue_depth"] = self._tenant_depth.get(tenant, 0)
                stats["weight"] = self.tenant_weights.get(tenant, 1.0)
                hist = self._tenant_queue_hist.get(tenant)
                stats["queue_wait"] = (
                    hist.to_json() if hist else LatencyHistogram().to_json()
                )
                tenants[tenant] = stats
            return {
                "state": self._state,
                "runtime": self.runtime_name,
                "jobs": {
                    "submitted": self._jobs_submitted,
                    "served": self._jobs_served,
                    "failed": self._jobs_failed,
                    "rejected": self._jobs_rejected,
                    "cancelled": self._jobs_cancelled,
                    "queue_depth": self._depth,
                },
                "latency": {
                    "queue_wait": self._hist_queue.to_json(),
                    "setup": self._hist_setup.to_json(),
                    "render": self._hist_render.to_json(),
                },
                "tenants": tenants,
                "warm_pool": pool,
                "warm_hit_rate": self._warm_hits / lookups if lookups else 0.0,
                "setup_seconds_saved": self._setup_seconds_saved,
                "bytes_pickled": self._bytes_pickled,
                "node_recoveries": self._node_recoveries,
                "incremental": {
                    "enabled": self.incremental,
                    "tiles_reused": self._tiles_reused,
                    "rays_saved": self._rays_saved,
                },
            }

    @property
    def state(self) -> str:
        """``"running"`` → (``close()``) → ``"draining"`` → ``"closed"``."""
        with self._cv:
            return self._state

    def close(
        self, *, cancel_pending: bool = False, timeout: Optional[float] = None
    ) -> None:
        """Stop accepting jobs, drain the queue, release every warm slot.

        Closing closes the job stream's writer; the scheduler keeps serving
        until its blocking ``get()`` returns the *definitive* end-of-stream
        ``None`` (writer closed **and** queue drained), so jobs accepted
        before ``close`` still complete.  With ``cancel_pending=True`` the
        not-yet-started jobs are cancelled instead of executed (their
        futures raise :class:`~concurrent.futures.CancelledError`).
        Idempotent; blocks up to ``timeout`` for the drain to finish.
        """
        with self._cv:
            if not self._closing:
                self._closing = True
                self._state = "draining" if self._state == "running" else self._state
                self._writer.close()
            if cancel_pending:
                self._cancel_pending = True
            self._cv.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scheduler loop -------------------------------------------------------
    def _scheduler_loop(self) -> None:
        wfq = WeightedFairQueue(self.tenant_weights)
        try:
            while True:
                if not len(wfq):
                    # blocking read: this None is the definitive end-of-stream
                    # (writer closed by close() AND the queue fully drained)
                    rec = self._jobs.get()
                    if rec is None:
                        break
                    self._admit(wfq, rec)
                # top-up: admit everything already queued so tenants and
                # priorities compete.  try_get's None means "empty right now"
                # — with writers still open it is NOT end-of-stream, so an
                # idle service must keep waiting in get() above, never shut
                # down
                while True:
                    extra = self._jobs.try_get()
                    if extra is None:
                        break
                    self._admit(wfq, extra)
                _, entry = wfq.pop()
                self._execute(entry)
        finally:
            self._pool.close()
            with self._cv:
                self._state = "closed"
                self._cv.notify_all()

    @staticmethod
    def _admit(wfq: WeightedFairQueue, rec: Record) -> None:
        entry: _QueuedJob = rec.field("job")
        wfq.push(entry.job.tenant, entry.order_key, entry)

    # -- job execution --------------------------------------------------------
    def _execute(self, entry: _QueuedJob) -> None:
        with self._cv:
            cancel = self._cancel_pending
        if cancel or not entry.future.set_running_or_notify_cancel():
            if cancel:
                entry.future.cancel()
            self._job_done("cancelled", entry)
            return
        try:
            job = entry.job
            started = time.perf_counter()
            queued_seconds = started - entry.submitted_at
            slot, warm = self._slot_for(job)
            try:
                slot.backend.begin_job()
                rays_before = slot.backend.rays_cast
                tiles_before = getattr(slot.backend, "tiles_reused", 0)
                saved_before = getattr(slot.backend, "rays_saved", 0)
                inputs = farm_inputs(
                    job.variant, slot.scene, nodes=job.nodes, tasks=job.tasks,
                    tokens=job.tokens,
                )
                outputs = run_on(
                    slot.runtime, slot.network, inputs, timeout=self.job_timeout
                )
                image = extract_image(slot.backend)
                seconds = time.perf_counter() - started
                slot.jobs_served += 1
                # node deaths survived since the slot's previous job
                # (distributed runtimes expose a cumulative failover/revival
                # counter; others report 0)
                recoveries_total = int(getattr(slot.runtime, "recoveries", 0))
                recovered = recoveries_total - slot.recoveries_seen
                slot.recoveries_seen = recoveries_total
                result = JobResult(
                    job=job,
                    image=image,
                    seconds=seconds,
                    queued_seconds=queued_seconds,
                    warm=warm,
                    scene_key=slot.key[1],
                    rays_cast=slot.backend.rays_cast - rays_before,
                    bytes_pickled=int(getattr(slot.runtime, "bytes_pickled", 0)),
                    node_recoveries=max(0, recovered),
                    tiles_reused=getattr(slot.backend, "tiles_reused", 0)
                    - tiles_before,
                    rays_saved=getattr(slot.backend, "rays_saved", 0)
                    - saved_before,
                    outputs=outputs,
                )
            finally:
                self._pool.release(slot)
            with self._cv:
                if warm:
                    self._warm_hits += 1
                    self._setup_seconds_saved += slot.setup_seconds
                else:
                    self._cold_builds += 1
                    self._hist_setup.add(slot.setup_seconds)
                self._render_seconds += seconds
                self._bytes_pickled += result.bytes_pickled
                self._node_recoveries += result.node_recoveries
                self._tiles_reused += result.tiles_reused
                self._rays_saved += result.rays_saved
                self._hist_queue.add(queued_seconds)
                self._hist_render.add(seconds)
                self._tenant_queue_hist.setdefault(
                    job.tenant, LatencyHistogram()
                ).add(queued_seconds)
            self._job_done("served", entry)
            entry.future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            self._job_done("failed", entry)
            entry.future.set_exception(exc)

    def _job_done(self, outcome: str, entry: _QueuedJob) -> None:
        tenant = entry.job.tenant
        with self._cv:
            self._depth -= 1
            depth = self._tenant_depth.get(tenant, 0) - 1
            if depth > 0:
                self._tenant_depth[tenant] = depth
            else:
                self._tenant_depth.pop(tenant, None)
            if outcome == "served":
                self._jobs_served += 1
                self._tenant_stat(tenant, "served")
            elif outcome == "failed":
                self._jobs_failed += 1
                self._tenant_stat(tenant, "failed")
            elif outcome == "cancelled":
                self._jobs_cancelled += 1
                self._tenant_stat(tenant, "cancelled")
            self._cv.notify_all()

    # -- warm slots -----------------------------------------------------------
    @property
    def _slots(self) -> "OrderedDict[Tuple[str, str, str], WarmSlot]":
        """Snapshot of the warm pool's key -> slot mapping (tests/debugging)."""
        return self._pool.slots()

    #: fork-time journal backlog beyond which a warm slot is rebuilt instead
    #: of shipping the edits: past this, replaying the journal in every
    #: worker costs more than a fresh fork with the edits already applied
    MAX_SHIPPED_EDITS = 64

    def _slot_for(self, job: RenderJob) -> Tuple[WarmSlot, bool]:
        """Lease the warm slot serving ``job`` (building it cold on a miss).

        In-place scene edits (``Scene.begin_edit``) change the scene's
        content key; the warm slot built under the pre-edit key still holds
        the *same live scene object*, so it is adopted to the new key
        (keeping its forked workers and tile cache alive) rather than
        duplicated.  A slot whose fork-time workers can no longer be caught
        up — the journal trimmed past the fork epoch, or the backlog exceeds
        :data:`MAX_SHIPPED_EDITS` — is discarded first: a stale worker would
        render silently wrong pixels.
        """
        key = (self.runtime_name, scene_content_key(job.scene), job.variant)
        adopted = self._pool.adopt(
            key,
            lambda slot: (
                slot.key[0] == self.runtime_name
                and slot.key[2] == job.variant
                and slot.parts.get("scene") is job.scene
            ),
        )
        if adopted is not None and self._slot_stale(adopted, job.scene):
            self._pool.discard(key)

        def build() -> Dict[str, Any]:
            parts = build_warm_runtime(
                job.scene,
                job.variant,
                width=self.width,
                height=self.height,
                plane=self._plane,
                render_mode=self.render_mode,
                scheduler=self.scheduler,
                runtime=self.runtime_name,
                runtime_options=self.runtime_options,
                incremental=self.incremental,
            )
            return {
                "scene": parts.scene,
                "backend": parts.backend,
                "network": parts.network,
                "runtime": parts.runtime,
                "setup_seconds": parts.setup_seconds,
            }

        return self._pool.acquire(key, build)

    @staticmethod
    def _slot_stale(slot: WarmSlot, scene: Scene) -> bool:
        """Whether a slot's fork-time workers can no longer be caught up."""
        backend = slot.parts.get("backend")
        if backend is None or not getattr(backend, "ship_edits", False):
            return False
        journal = getattr(scene, "journal", None)
        if journal is None:
            return False
        pending = journal.entries_since(getattr(backend, "broadcast_epoch", 0))
        return pending is None or len(pending) > RenderService.MAX_SHIPPED_EDITS
