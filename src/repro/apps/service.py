"""A persistent render-farm service with warm-runtime job scheduling.

:func:`repro.apps.runner.run_raytracing_farm` is the paper's evaluation
shape: one shot, full runtime construction per call — process-pool fork,
scene broadcast into the fork-shared registry, shared-memory frame
registration — all paid before the first ray is cast.  A render farm that
serves many jobs cannot afford that; :class:`RenderService` keeps the
expensive parts alive *between* jobs:

* **runtime lifecycle reuse** — per cached scene the service holds a *warm
  slot*: the render backend (including its shared frame buffer), the built
  network, and a runtime set up once via the engines' ``setup()``/
  ``teardown()`` split (:meth:`ProcessRuntime.setup
  <repro.snet.runtime.process_engine.ProcessRuntime.setup>` forks the pool
  once, with the scene already broadcast);
* **a job scheduler** — ``submit(job)`` returns a
  :class:`concurrent.futures.Future`; queued jobs execute FIFO within
  priority (higher ``RenderJob.priority`` first), and a bounded queue
  applies backpressure with a selectable ``overflow`` policy (``"block"``
  the submitter, or ``"reject"`` with :class:`ServiceOverloaded`);
* **a scene cache** — warm slots are keyed by *content hash*
  (:func:`scene_content_key`), so a content-identical scene object — e.g.
  a replayed animation keyframe from
  :func:`repro.apps.workloads.animation_scenes` — skips scene preparation,
  broadcast registration and pool re-fork entirely;
* **service metrics** — :meth:`RenderService.metrics` reports jobs served,
  queue depth, warm-hit rate and the setup seconds the cache saved,
  surfaced the same way ``FarmRun.bytes_pickled`` surfaces the data-plane
  cost.

The service boundary and the ``try_get`` contract
-------------------------------------------------

The job queue is a real S-Net :class:`~repro.snet.runtime.stream.Stream` of
job records, and the scheduler loop leans on the two distinct ``None``
meanings of the stream API (see :meth:`Stream.try_get
<repro.snet.runtime.stream.Stream.try_get>`):

* ``try_get() -> None`` means **"empty right now"** — the service uses it
  only to *top up* the priority heap with whatever is already queued, so an
  idle moment must never be mistaken for shutdown;
* ``get() -> None`` is the **definitive end-of-stream** — it fires only
  once :meth:`close` has closed the writer *and* the queue has drained, so
  every job accepted before ``close()`` still executes (drain-then-stop).

``tests/apps/test_render_service.py`` pins both halves of this contract.

Example
-------

>>> from repro.raytracer.scene import random_scene
>>> scene = random_scene(num_spheres=3)
>>> with RenderService(width=16, height=16, render_mode="packet") as service:
...     first = service.submit(RenderJob(scene, nodes=2, tasks=2)).result(60)
...     second = service.submit(RenderJob(scene, nodes=2, tasks=2)).result(60)
>>> first.image.shape, first.warm, second.warm
((16, 16, 3), False, True)
>>> service.metrics().warm_hits
1
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.backends import RenderBackend
from repro.apps.runner import (
    FARM_VARIANTS,
    build_farm_backend,
    farm_inputs,
    resolve_data_plane,
)
from repro.apps.workloads import extract_image
from repro.raytracer.materials import Material
from repro.raytracer.scene import Scene
from repro.scheduling.base import Scheduler
from repro.snet.records import Record
from repro.snet.runtime import get_runtime, run_on
from repro.snet.runtime.stream import Stream

__all__ = [
    "RenderService",
    "RenderJob",
    "JobResult",
    "ServiceMetrics",
    "ServiceClosed",
    "ServiceOverloaded",
    "scene_content_key",
]


class ServiceClosed(RuntimeError):
    """Submitting to (or waiting on) a service that has been closed."""


class ServiceOverloaded(RuntimeError):
    """The bounded job queue is full and the overflow policy is ``"reject"``."""


# -- scene content hashing ----------------------------------------------------
_KEY_ATTR = "_repro_content_key"


def _canonical(value: Any) -> Any:
    """A picklable, content-deterministic description of one scene value.

    NumPy arrays hash by shape/dtype/bytes; objects with a ``__dict__``
    (primitives, materials, lights) hash by their sorted attributes with the
    global ``primitive_id`` counter excluded — two scenes built from the
    same description must produce the same key even though their primitive
    ids differ.
    """
    if isinstance(value, np.ndarray):
        return ("nd", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return value
    if isinstance(value, Material) or hasattr(value, "__dict__"):
        attrs = {
            name: attr
            for name, attr in vars(value).items()
            if name != "primitive_id" and not name.startswith("_")
        }
        return (
            type(value).__name__,
            tuple((name, _canonical(attr)) for name, attr in sorted(attrs.items())),
        )
    return repr(value)


def scene_content_key(scene: Scene) -> str:
    """Content hash of a scene: equal for content-identical scene objects.

    The key covers everything that determines the rendered image — objects
    (geometry + material), lights, background, recursion depth and the
    acceleration-structure choice — and deliberately excludes derived state
    (the lazily built BVH) and the process-global ``primitive_id`` counters.

    The key is memoised on the scene object, so repeated submissions of the
    same object are O(1).  Scenes are treated as immutable job payloads (the
    S-Net purity contract); mutating a scene after it has been keyed is
    unsupported — build a new :class:`Scene` instead.

    >>> from repro.raytracer.scene import random_scene
    >>> a, b = random_scene(num_spheres=3), random_scene(num_spheres=3)
    >>> a is not b and scene_content_key(a) == scene_content_key(b)
    True
    >>> scene_content_key(random_scene(num_spheres=4)) == scene_content_key(a)
    False
    """
    cached = getattr(scene, _KEY_ATTR, None)
    if cached is not None:
        return cached
    description = (
        tuple(_canonical(obj) for obj in scene.objects),
        tuple(_canonical(light) for light in scene.lights),
        _canonical(scene.background),
        scene.max_ray_depth,
        scene.use_bvh,
    )
    key = hashlib.sha256(pickle.dumps(description, protocol=5)).hexdigest()[:16]
    try:
        setattr(scene, _KEY_ATTR, key)
    except AttributeError:  # __slots__ scenes: just recompute next time
        pass
    return key


# -- jobs and results ---------------------------------------------------------
@dataclass
class RenderJob:
    """One unit of work for the service: render ``scene`` once.

    ``variant``/``nodes``/``tasks``/``tokens`` mirror the knobs of
    :func:`~repro.apps.runner.run_raytracing_farm`.  ``priority`` orders the
    queue: higher values run earlier, FIFO within equal priority.  ``label``
    is free-form caller bookkeeping (e.g. a frame number) echoed on the
    :class:`JobResult`.
    """

    scene: Scene
    nodes: int = 2
    tasks: int = 8
    tokens: Optional[int] = None
    variant: str = "static"
    priority: int = 0
    label: Optional[str] = None


@dataclass
class JobResult:
    """Outcome of one served job (the value of the job's future).

    ``warm`` tells whether the job was served from an existing warm slot
    (scene-cache hit: no scene preparation, no pool fork, no frame-buffer
    registration).  ``seconds`` is pure execution time; ``queued_seconds``
    is the time spent waiting in the queue before execution started.
    """

    job: RenderJob
    image: Any
    seconds: float
    queued_seconds: float
    warm: bool
    scene_key: str
    rays_cast: int
    bytes_pickled: int
    node_recoveries: int = 0
    outputs: List[Record] = field(repr=False, default_factory=list)


@dataclass(frozen=True)
class ServiceMetrics:
    """Snapshot of the service counters (see :meth:`RenderService.metrics`).

    ``queue_depth`` counts jobs accepted but not yet completed (waiting or
    executing).  ``setup_seconds_saved`` charges, for every warm hit, the
    measured cold-build cost of the slot that served it — the wall-clock the
    scene cache avoided.  ``warm_hit_rate`` is warm hits over executed
    cache lookups (0.0 before the first job).  ``node_recoveries`` counts
    distributed node workers that died and were failed over or revived
    while serving jobs — a non-zero value means the service stayed up
    through node deaths.
    """

    state: str
    jobs_submitted: int
    jobs_served: int
    jobs_failed: int
    jobs_rejected: int
    jobs_cancelled: int
    queue_depth: int
    warm_hits: int
    cold_builds: int
    warm_hit_rate: float
    setup_seconds_saved: float
    render_seconds: float
    bytes_pickled: int
    scenes_cached: int
    node_recoveries: int


@dataclass
class _WarmSlot:
    """Everything kept alive between jobs on one cached scene."""

    key: Tuple[str, str]
    scene: Scene
    backend: RenderBackend
    network: Any
    runtime: Any
    setup_seconds: float
    jobs_served: int = 0
    #: watermark of the runtime's cumulative ``recoveries`` counter after
    #: the last served job, so node deaths handled *between* jobs (the
    #: warm revive path runs on a link receiver thread) are still
    #: attributed to the next job instead of slipping between two deltas
    recoveries_seen: int = 0


@dataclass
class _QueuedJob:
    seq: int
    job: RenderJob
    future: Future
    submitted_at: float

    @property
    def heap_key(self) -> Tuple[int, int]:
        # higher priority first, FIFO (submission order) within a priority
        return (-self.job.priority, self.seq)


# -- the service --------------------------------------------------------------
class RenderService:
    """A persistent farm: warm runtimes, a scene cache and a job queue.

    Parameters
    ----------
    runtime:
        Runtime backend name executing the jobs (``"threaded"``,
        ``"process"`` or ``"distributed"``; the simulated backend has no
        warm resources worth a service).  The distributed backend keeps one
        set of compute-node worker processes warm per cached scene — pass
        ``runtime_options={"nodes": N}`` to size it.
    width, height, render_mode, data_plane, scheduler, runtime_options:
        Fixed per service, exactly as for
        :func:`~repro.apps.runner.run_raytracing_farm`; every job renders at
        this resolution.
    max_queue:
        Bound of the job queue (jobs accepted but not yet completed).
    overflow:
        Backpressure policy when the queue is full: ``"block"`` makes
        ``submit`` wait for space, ``"reject"`` raises
        :class:`ServiceOverloaded` immediately.
    max_scenes:
        Warm slots kept alive; beyond this the least-recently-used slot is
        torn down (pool terminated, shared frame released).
    job_timeout:
        Per-job wall-clock deadline handed to the runtime.
    check:
        Static-analysis mode (``"warn"``/``"error"``/``"off"``) forwarded to
        every warm runtime the service creates: each farm network is
        validated once, before its first record flows.  An explicit
        ``runtime_options["check"]`` takes precedence.

    The service starts accepting jobs immediately; :meth:`close` drains the
    queue and releases every warm slot.  Use as a context manager to
    guarantee teardown.  See the module docstring for a runnable example.
    """

    _STATES = ("running", "draining", "closed")

    def __init__(
        self,
        runtime: str = "threaded",
        *,
        width: int = 64,
        height: int = 64,
        render_mode: Optional[str] = None,
        data_plane: str = "auto",
        scheduler: Optional[Scheduler] = None,
        runtime_options: Optional[Dict[str, Any]] = None,
        max_queue: int = 16,
        overflow: str = "block",
        max_scenes: int = 4,
        job_timeout: float = 300.0,
        check: str = "warn",
    ):
        if overflow not in ("block", "reject"):
            raise ValueError(
                f"unknown overflow policy {overflow!r}; use 'block' or 'reject'"
            )
        if check not in ("warn", "error", "off"):
            raise ValueError(
                f"unknown check mode {check!r}; use 'warn', 'error' or 'off'"
            )
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_scenes < 1:
            raise ValueError("max_scenes must be at least 1")
        self.runtime_name = runtime
        self.width = width
        self.height = height
        self.render_mode = render_mode
        self.scheduler = scheduler
        self.runtime_options = dict(runtime_options or {})
        # static network validation mode for every warm runtime the service
        # creates; an explicit runtime_options["check"] wins
        self.runtime_options.setdefault("check", check)
        self.max_queue = max_queue
        self.overflow = overflow
        self.max_scenes = max_scenes
        self.job_timeout = job_timeout
        self._plane = resolve_data_plane(data_plane, runtime)

        # the service boundary: a bounded S-Net stream of job records.  Its
        # capacity exceeds max_queue so writer.put never blocks while the
        # submit-side condition variable enforces the *policy* bound.
        self._jobs = Stream(name="render-service-jobs", capacity=max_queue + 2)
        self._writer = self._jobs.open_writer()
        self._cv = threading.Condition()
        self._seq = itertools.count()
        self._depth = 0
        self._closing = False
        self._cancel_pending = False
        self._state = "running"

        self._slots: "OrderedDict[Tuple[str, str], _WarmSlot]" = OrderedDict()

        # counters (all mutated under _cv)
        self._jobs_submitted = 0
        self._jobs_served = 0
        self._jobs_failed = 0
        self._jobs_rejected = 0
        self._jobs_cancelled = 0
        self._warm_hits = 0
        self._cold_builds = 0
        self._setup_seconds_saved = 0.0
        self._render_seconds = 0.0
        self._bytes_pickled = 0
        self._node_recoveries = 0

        self._thread = threading.Thread(
            target=self._scheduler_loop, name="render-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- public API ----------------------------------------------------------
    def submit(self, job: RenderJob) -> "Future[JobResult]":
        """Queue ``job`` and return a future resolving to its :class:`JobResult`.

        Raises :class:`ServiceClosed` after :meth:`close`, and — queue full —
        either blocks (``overflow="block"``) or raises
        :class:`ServiceOverloaded` (``overflow="reject"``).  The future
        supports ``cancel()`` while the job is still queued.
        """
        if job.variant not in FARM_VARIANTS:
            raise ValueError(
                f"unknown farm variant {job.variant!r}; available: "
                + ", ".join(sorted(FARM_VARIANTS))
            )
        if not isinstance(job.scene, Scene):
            raise TypeError(f"RenderJob.scene must be a Scene, got {job.scene!r}")
        future: "Future[JobResult]" = Future()
        with self._cv:
            while True:
                if self._closing:
                    raise ServiceClosed("submit on a closed RenderService")
                if self._depth < self.max_queue:
                    break
                if self.overflow == "reject":
                    self._jobs_rejected += 1
                    raise ServiceOverloaded(
                        f"job queue is full ({self.max_queue} jobs pending) and "
                        "the overflow policy is 'reject'"
                    )
                self._cv.wait()
            self._depth += 1
            self._jobs_submitted += 1
            entry = _QueuedJob(
                seq=next(self._seq),
                job=job,
                future=future,
                submitted_at=time.perf_counter(),
            )
            # priority rides as a tag so the queue reads like any S-Net stream
            self._writer.put(Record({"job": entry, "<priority>": int(job.priority)}))
        return future

    def render(self, job: RenderJob, timeout: Optional[float] = None) -> JobResult:
        """Synchronous convenience: ``submit(job).result(timeout)``."""
        return self.submit(job).result(timeout)

    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of the service counters."""
        with self._cv:
            lookups = self._warm_hits + self._cold_builds
            return ServiceMetrics(
                state=self._state,
                jobs_submitted=self._jobs_submitted,
                jobs_served=self._jobs_served,
                jobs_failed=self._jobs_failed,
                jobs_rejected=self._jobs_rejected,
                jobs_cancelled=self._jobs_cancelled,
                queue_depth=self._depth,
                warm_hits=self._warm_hits,
                cold_builds=self._cold_builds,
                warm_hit_rate=self._warm_hits / lookups if lookups else 0.0,
                setup_seconds_saved=self._setup_seconds_saved,
                render_seconds=self._render_seconds,
                bytes_pickled=self._bytes_pickled,
                scenes_cached=len(self._slots),
                node_recoveries=self._node_recoveries,
            )

    @property
    def state(self) -> str:
        """``"running"`` → (``close()``) → ``"draining"`` → ``"closed"``."""
        with self._cv:
            return self._state

    def close(
        self, *, cancel_pending: bool = False, timeout: Optional[float] = None
    ) -> None:
        """Stop accepting jobs, drain the queue, release every warm slot.

        Closing closes the job stream's writer; the scheduler keeps serving
        until its blocking ``get()`` returns the *definitive* end-of-stream
        ``None`` (writer closed **and** queue drained), so jobs accepted
        before ``close`` still complete.  With ``cancel_pending=True`` the
        not-yet-started jobs are cancelled instead of executed (their
        futures raise :class:`~concurrent.futures.CancelledError`).
        Idempotent; blocks up to ``timeout`` for the drain to finish.
        """
        with self._cv:
            if not self._closing:
                self._closing = True
                self._state = "draining" if self._state == "running" else self._state
                self._writer.close()
            if cancel_pending:
                self._cancel_pending = True
            self._cv.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scheduler loop -------------------------------------------------------
    def _scheduler_loop(self) -> None:
        heap: List[Tuple[Tuple[int, int], _QueuedJob]] = []
        try:
            while True:
                if not heap:
                    # blocking read: this None is the definitive end-of-stream
                    # (writer closed by close() AND the queue fully drained)
                    rec = self._jobs.get()
                    if rec is None:
                        break
                    heapq.heappush(heap, self._heap_entry(rec))
                # top-up: admit everything already queued so priorities
                # compete.  try_get's None means "empty right now" — with
                # writers still open it is NOT end-of-stream, so an idle
                # service must keep waiting in get() above, never shut down
                while True:
                    extra = self._jobs.try_get()
                    if extra is None:
                        break
                    heapq.heappush(heap, self._heap_entry(extra))
                _, entry = heapq.heappop(heap)
                self._execute(entry)
        finally:
            self._shutdown_slots()
            with self._cv:
                self._state = "closed"
                self._cv.notify_all()

    @staticmethod
    def _heap_entry(rec: Record) -> Tuple[Tuple[int, int], _QueuedJob]:
        entry: _QueuedJob = rec.field("job")
        return (entry.heap_key, entry)

    # -- job execution --------------------------------------------------------
    def _execute(self, entry: _QueuedJob) -> None:
        with self._cv:
            cancel = self._cancel_pending
        if cancel or not entry.future.set_running_or_notify_cancel():
            if cancel:
                entry.future.cancel()
            self._job_done("cancelled")
            return
        try:
            job = entry.job
            started = time.perf_counter()
            slot, warm = self._slot_for(job)
            slot.backend.begin_job()
            rays_before = slot.backend.rays_cast
            inputs = farm_inputs(
                job.variant, slot.scene, nodes=job.nodes, tasks=job.tasks,
                tokens=job.tokens,
            )
            outputs = run_on(
                slot.runtime, slot.network, inputs, timeout=self.job_timeout
            )
            image = extract_image(slot.backend)
            seconds = time.perf_counter() - started
            slot.jobs_served += 1
            # node deaths survived since the slot's previous job (distributed
            # runtimes expose a cumulative failover/revival counter; others
            # report 0)
            recoveries_total = int(getattr(slot.runtime, "recoveries", 0))
            recovered = recoveries_total - slot.recoveries_seen
            slot.recoveries_seen = recoveries_total
            result = JobResult(
                job=job,
                image=image,
                seconds=seconds,
                queued_seconds=started - entry.submitted_at,
                warm=warm,
                scene_key=slot.key[0],
                rays_cast=slot.backend.rays_cast - rays_before,
                bytes_pickled=int(getattr(slot.runtime, "bytes_pickled", 0)),
                node_recoveries=max(0, recovered),
                outputs=outputs,
            )
            with self._cv:
                if warm:
                    self._warm_hits += 1
                    self._setup_seconds_saved += slot.setup_seconds
                else:
                    self._cold_builds += 1
                self._render_seconds += seconds
                self._bytes_pickled += result.bytes_pickled
                self._node_recoveries += result.node_recoveries
            self._job_done("served")
            entry.future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            self._job_done("failed")
            entry.future.set_exception(exc)

    def _job_done(self, outcome: str) -> None:
        with self._cv:
            self._depth -= 1
            if outcome == "served":
                self._jobs_served += 1
            elif outcome == "failed":
                self._jobs_failed += 1
            elif outcome == "cancelled":
                self._jobs_cancelled += 1
            self._cv.notify_all()

    # -- warm slots -----------------------------------------------------------
    def _slot_for(self, job: RenderJob) -> Tuple[_WarmSlot, bool]:
        """Return the warm slot serving ``job`` (building it cold on a miss)."""
        key = (scene_content_key(job.scene), job.variant)
        slot = self._slots.get(key)
        if slot is not None:
            self._slots.move_to_end(key)
            return slot, True

        started = time.perf_counter()
        scene = job.scene
        prepare = getattr(scene, "prepare_for_broadcast", None)
        if callable(prepare):
            prepare()  # build the BVH once; warm jobs inherit it
        backend = build_farm_backend(
            scene, self.width, self.height, self._plane, self.render_mode
        )
        network = FARM_VARIANTS[job.variant](
            backend, self.scheduler, render_mode=self.render_mode
        )
        options = dict(self.runtime_options)
        if self.runtime_name == "process":
            options.setdefault("zero_copy", self._plane == "shared")
        runtime = get_runtime(self.runtime_name, **options)
        setup = getattr(runtime, "setup", None)
        if callable(setup):
            # register boxes + broadcast the scene, then fork the pool — once
            runtime.setup(network, broadcast=(scene,))
        slot = _WarmSlot(
            key=key,
            scene=scene,
            backend=backend,
            network=network,
            runtime=runtime,
            setup_seconds=time.perf_counter() - started,
        )
        self._slots[key] = slot
        while len(self._slots) > self.max_scenes:
            _, evicted = self._slots.popitem(last=False)
            self._release_slot(evicted)
        return slot, False

    @staticmethod
    def _release_slot(slot: _WarmSlot) -> None:
        teardown = getattr(slot.runtime, "teardown", None)
        if callable(teardown):
            teardown()
        release = getattr(slot.backend, "release", None)
        if callable(release):
            release()

    def _shutdown_slots(self) -> None:
        while self._slots:
            _, slot = self._slots.popitem(last=False)
            self._release_slot(slot)
