"""The hand-written MPI ray tracer the paper compares against.

"The implementation we use in this paper distributes an image evenly across
all cluster nodes and processes these independently.  The root process
collects all sub-results and assembles the completed scene."  (Section II)

:func:`mpi_raytracer_program` is that program expressed against the simulated
MPI substrate: the root reads the scene from the shared file system,
broadcasts it, every rank renders its block of rows, the root gathers the
chunks, assembles the image and writes it back to the shared file system.
Compute time comes from the render backend (real seconds are irrelevant in
the simulation; the model backend charges the per-section cost), transfer
time from the simulated network.

:func:`run_mpi_raytracer` wraps the program in a launcher call and returns
the :class:`~repro.mpisim.launcher.MPIJob` plus the assembled result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.apps.backends import ModelRenderBackend, RealRenderBackend, RenderBackend
from repro.cluster.topology import Cluster
from repro.mpisim.communicator import Communicator
from repro.mpisim.launcher import MPIJob, run_mpi
from repro.scheduling.base import Section, validate_sections
from repro.scheduling.block import BlockScheduler

__all__ = ["mpi_raytracer_program", "run_mpi_raytracer", "MPIRaytraceResult"]

_CHUNK_TAG = 42


@dataclass
class MPIRaytraceResult:
    """Result of one simulated MPI ray-tracing job."""

    job: MPIJob
    chunks: List[Any]
    makespan: float


def mpi_raytracer_program(
    comm: Communicator, backend: RenderBackend, real_render: bool = False
) -> Generator:
    """One MPI rank of the baseline fork-join ray tracer.

    Parameters
    ----------
    comm:
        The rank's communicator.
    backend:
        Render backend shared by all ranks (scene, camera, cost model).
    real_render:
        When True the solver actually renders pixels (small images only);
        otherwise only the modelled cost is charged.
    """
    rank, size = comm.rank, comm.size
    sections = BlockScheduler(size).sections(backend.height)
    validate_sections(sections, backend.height)

    if rank == 0:
        # root: read the scene description from the shared file system and
        # broadcast it to every worker
        yield from comm.cluster.filesystem.read(backend.scene.payload_size())
        yield from comm.bcast(backend.scene, root=0)
    else:
        yield from comm.bcast(None, root=0)

    # every rank (including the root) renders its own section; whether that
    # produces real pixels or a placeholder is the backend's business
    section = sections[rank]
    yield from comm.compute(backend.section_cost(section))
    chunk = backend.render_section(section)

    if rank != 0:
        yield from comm.send(chunk, dest=0, tag=_CHUNK_TAG)
        return None

    # root: collect the remaining chunks in arrival order and assemble
    chunks: List[Any] = [chunk]
    for _ in range(size - 1):
        received = yield from comm.recv(tag=_CHUNK_TAG)
        chunks.append(received)
    picture = backend.init_picture(chunks[0])
    yield from comm.compute(backend.picture_copy_cost())
    for extra in chunks[1:]:
        picture = backend.merge(picture, extra)
        yield from comm.compute(backend.chunk_copy_cost(extra))
    backend.write_image(picture)
    yield from comm.cluster.filesystem.write(backend.width * backend.height * 3)
    return chunks


def run_mpi_raytracer(
    cluster: Cluster,
    backend: RenderBackend,
    processes_per_node: int = 1,
    real_render: bool = False,
) -> MPIRaytraceResult:
    """Launch the baseline on ``cluster`` with ``processes_per_node`` ranks/node."""
    if processes_per_node < 1:
        raise ValueError("processes_per_node must be at least 1")
    num_ranks = cluster.num_nodes * processes_per_node
    placement = [rank % cluster.num_nodes for rank in range(num_ranks)]
    job = run_mpi(
        cluster,
        num_ranks,
        mpi_raytracer_program,
        placement=placement,
        program_kwargs={"backend": backend, "real_render": real_render},
    )
    chunks = job.results[0] or []
    return MPIRaytraceResult(job=job, chunks=chunks, makespan=job.makespan)
