"""Shared fixtures for the figure-reproduction benchmarks."""

import json
import os
import pathlib

import pytest

from repro.bench.experiments import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """The workload/substrate configuration used for every figure."""
    return ExperimentSettings()


@pytest.fixture
def bench_json():
    """Writer for per-benchmark timing records (the CI trajectory artifact).

    Returns ``write(name, payload)``; when the ``BENCH_RESULTS_DIR``
    environment variable is set the payload is dumped as
    ``$BENCH_RESULTS_DIR/<name>.json`` (CI uploads that directory as the
    ``bench-timings`` artifact, accumulating BENCH_* trajectory data per
    PR), otherwise the call is a no-op so local runs stay side-effect free.
    """

    def write(name: str, payload: dict):
        out_dir = os.environ.get("BENCH_RESULTS_DIR")
        if not out_dir:
            return None
        directory = pathlib.Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name}.json"
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return target

    return write
