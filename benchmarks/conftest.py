"""Shared fixtures for the figure-reproduction benchmarks."""

import pytest

from repro.bench.experiments import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """The workload/substrate configuration used for every figure."""
    return ExperimentSettings()
