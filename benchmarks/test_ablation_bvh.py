"""Ablation A3 — BVH versus brute-force intersection.

The paper's solver uses a Goldsmith-Salmon BVH "to enable efficient ray
tracing".  This benchmark measures the real (wall-clock) effect of the BVH on
the Python tracer for a small render, and checks that the acceleration
structure does not change the image.
"""

import numpy as np

from repro.raytracer import Camera, random_scene, render
from repro.raytracer.bvh import BVH, BruteForceIndex
from repro.raytracer.image import image_rms_difference
from repro.raytracer.ray import Ray
from repro.raytracer.vec import vec3


def _intersection_workload(index, rays):
    hits = 0
    for ray in rays:
        primitive, _ = index.intersect(ray)
        if primitive is not None:
            hits += 1
    return hits


def test_bvh_versus_brute_force(benchmark):
    scene = random_scene(num_spheres=120, clustering=0.4, seed=3)
    primitives = scene.bounded_objects
    bvh = BVH(primitives)
    brute = BruteForceIndex(primitives)

    rng = np.random.default_rng(1)
    rays = [
        Ray(vec3(0, 1, 5), vec3(*(rng.random(3) * 2 - 1))) for _ in range(400)
    ]

    bvh_hits = benchmark.pedantic(
        _intersection_workload, args=(bvh, rays), rounds=3, iterations=1
    )
    brute_hits = _intersection_workload(brute, rays)

    # identical results...
    assert bvh_hits == brute_hits
    # ...with far fewer primitive intersection tests
    assert bvh.stats.primitive_tests < brute.stats.primitive_tests * 0.5


def test_bvh_renders_identical_image():
    camera = Camera(position=vec3(0, 0.5, 4), look_at=vec3(0, 0, -2), width=16, height=16)
    with_bvh = render(random_scene(num_spheres=30, seed=11, use_bvh=True), camera)
    without_bvh = render(random_scene(num_spheres=30, seed=11, use_bvh=False), camera)
    assert image_rms_difference(with_bvh, without_bvh) < 1e-12


def test_flat_versus_node_versus_brute_packet_traversal(benchmark, bench_json):
    """Ablation A3b — packet traversal across the three index structures.

    Same scene, same ray packet, three traversals: the brute-force linear
    scan, the node-based masked packet traversal and the compiled flat SoA
    traversal.  All three must agree exactly (hit parameters bit-identical,
    hit primitives identical); the flat traversal must not be slower than
    the node traversal it compiles.
    """
    import time

    from repro.raytracer.flatbvh import FlatBVH
    from repro.raytracer.vec import normalize_rows

    scene = random_scene(num_spheres=800, clustering=0.4, seed=3)
    primitives = scene.bounded_objects
    bvh = BVH(primitives)
    flat = FlatBVH.from_bvh(bvh)
    brute = BruteForceIndex(primitives)

    rng = np.random.default_rng(2)
    n_rays = 4096
    origins = np.tile(np.array([0.0, 1.0, 5.0]), (n_rays, 1))
    directions = normalize_rows(
        np.array([0.0, -0.2, -1.0]) + rng.uniform(-0.6, 0.6, (n_rays, 3))
    )

    def timed(index):
        best = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            result = index.intersect_packet(origins, directions)
            best = min(best, time.perf_counter() - t0)
        return best, result

    brute_s, (bi, bt) = timed(brute)
    node_s, (ni, nt) = timed(bvh)
    flat_s, (fi, ft) = benchmark.pedantic(timed, args=(flat,), rounds=1, iterations=1)

    # identical hits: flat vs node share the leaf order (exact index match),
    # brute enumerates insertion order (compare by primitive identity)
    assert np.array_equal(ni, fi) and np.array_equal(nt, ft)
    assert np.array_equal(bt, ft)
    hits = (bi >= 0).nonzero()[0]
    assert all(
        flat.packet_primitives[fi[r]] is brute.primitives[bi[r]] for r in hits
    )

    bench_json(
        "BENCH_8_ablation",
        {
            "rays": n_rays,
            "spheres": len(primitives),
            "brute_seconds": brute_s,
            "node_seconds": node_s,
            "flat_seconds": flat_s,
            "flat_vs_node_speedup": node_s / flat_s,
            "node_vs_brute_speedup": brute_s / node_s,
        },
    )
    print(
        f"\npacket traversal: brute {brute_s:.4f}s, node {node_s:.4f}s, "
        f"flat {flat_s:.4f}s ({node_s / flat_s:.2f}x vs node)"
    )
    assert flat_s <= node_s
