"""Ablation A3 — BVH versus brute-force intersection.

The paper's solver uses a Goldsmith-Salmon BVH "to enable efficient ray
tracing".  This benchmark measures the real (wall-clock) effect of the BVH on
the Python tracer for a small render, and checks that the acceleration
structure does not change the image.
"""

import numpy as np

from repro.raytracer import Camera, random_scene, render
from repro.raytracer.bvh import BVH, BruteForceIndex
from repro.raytracer.image import image_rms_difference
from repro.raytracer.ray import Ray
from repro.raytracer.vec import vec3


def _intersection_workload(index, rays):
    hits = 0
    for ray in rays:
        primitive, _ = index.intersect(ray)
        if primitive is not None:
            hits += 1
    return hits


def test_bvh_versus_brute_force(benchmark):
    scene = random_scene(num_spheres=120, clustering=0.4, seed=3)
    primitives = scene.bounded_objects
    bvh = BVH(primitives)
    brute = BruteForceIndex(primitives)

    rng = np.random.default_rng(1)
    rays = [
        Ray(vec3(0, 1, 5), vec3(*(rng.random(3) * 2 - 1))) for _ in range(400)
    ]

    bvh_hits = benchmark.pedantic(
        _intersection_workload, args=(bvh, rays), rounds=3, iterations=1
    )
    brute_hits = _intersection_workload(brute, rays)

    # identical results...
    assert bvh_hits == brute_hits
    # ...with far fewer primitive intersection tests
    assert bvh.stats.primitive_tests < brute.stats.primitive_tests * 0.5


def test_bvh_renders_identical_image():
    camera = Camera(position=vec3(0, 0.5, 4), look_at=vec3(0, 0, -2), width=16, height=16)
    with_bvh = render(random_scene(num_spheres=30, seed=11, use_bvh=True), camera)
    without_bvh = render(random_scene(num_spheres=30, seed=11, use_bvh=False), camera)
    assert image_rms_difference(with_bvh, without_bvh) < 1e-12
