"""E11 — the static network checker is free on the steady-state data path.

PR 7 wires ``check="warn"|"error"|"off"`` into every runtime: the
whole-network dataflow analysis (deadlock, dead branches, unroutable
records) runs **once per network object** when it is first set up or run,
and its verdict is cached, so record processing itself is untouched.  The
contract this benchmark pins down:

* **time** — a warm 2000-sphere frame under ``check="error"`` costs at
  most **1.05x** the same frame under ``check="off"`` (measured ~1.0x:
  after the first validation the per-run cost is one ``WeakKeyDictionary``
  lookup);
* **conformance** — both configurations produce pixel-identical frames.

Each configuration is timed as the min of ``RUNS`` warm runs after a
discarded warm-up run (which is where the one-shot analysis actually
happens), keeping the verdict about the data path rather than compile
time.  Timings go to the ``bench_json`` CI artifact when
``BENCH_RESULTS_DIR`` is set, *and* to ``BENCH_7.json`` at the repository
root so the perf trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.apps.networks import build_static_network
from repro.apps.runner import build_farm_backend, farm_inputs
from repro.apps.workloads import extract_image
from repro.raytracer.scene import paper_scene
from repro.snet.runtime import ThreadedRuntime

WIDTH = HEIGHT = 48
NUM_SPHERES = 2000
TASKS = 8
RUNS = 3
MAX_CHECK_OVERHEAD = 1.05

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _build_farm(scene):
    backend = build_farm_backend(scene, WIDTH, HEIGHT, "records", "packet")
    network = build_static_network(backend, render_mode="packet")
    inputs = farm_inputs("static", scene, nodes=1, tasks=TASKS)
    return backend, network, inputs


def _measure_warm(scene, check):
    """Min-of-RUNS warm frame seconds for one ``check`` setting."""
    backend, network, inputs = _build_farm(scene)
    runtime = ThreadedRuntime(check=check)

    backend.begin_job()
    runtime.run(network, list(inputs), timeout=150.0)  # warm-up: analysis runs here

    best = float("inf")
    for _ in range(RUNS):
        backend.begin_job()
        start = time.perf_counter()
        runtime.run(network, list(inputs), timeout=150.0)
        best = min(best, time.perf_counter() - start)
    return extract_image(backend), best


def test_static_check_overhead(bench_json):
    scene = paper_scene(num_spheres=NUM_SPHERES)

    image_off, seconds_off = _measure_warm(scene, check="off")
    image_on, seconds_on = _measure_warm(scene, check="error")

    # conformance first: a fast wrong answer is not an optimisation
    np.testing.assert_allclose(image_on, image_off, atol=1e-9)

    overhead = seconds_on / seconds_off
    assert overhead <= MAX_CHECK_OVERHEAD, (seconds_on, seconds_off)

    payload = {
        "benchmark": "analysis_overhead",
        "width": WIDTH,
        "height": HEIGHT,
        "tasks": TASKS,
        "num_spheres": NUM_SPHERES,
        "runs": RUNS,
        "cpu_count": os.cpu_count(),
        "seconds_check_off": seconds_off,
        "seconds_check_error": seconds_on,
        "overhead_factor": overhead,
    }
    bench_json("analysis_overhead", payload)
    (REPO_ROOT / "BENCH_7.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nstatic check error vs off: {seconds_on:.3f}s vs {seconds_off:.3f}s "
        f"(x{overhead:.3f})"
    )
