"""E9 — setup-overhead elimination by the persistent render service.

A one-shot ``run_raytracing_farm`` pays full runtime construction per frame:
scene preparation (the BVH build dominates on a dense scene), render-backend
and shared-frame allocation, network build, fork-shared box/payload
registration and the process-pool fork itself.  The ``RenderService`` keeps
all of that warm per cached scene, so second-and-later jobs pay only the
render.

This benchmark is **1-CPU-safe**: it measures the *elimination of setup
overhead* on repeated jobs for one scene — not parallel speedup — so it
holds the farm shape (nodes/tasks/workers/section count) fixed across the
cold and warm arms.  The workload is sized so that setup is a significant
fraction of a cold job (dense 2000-sphere scene, small 64x64 frame): cold
jobs rebuild the BVH per call (fresh content-identical scene objects, which
is exactly what a one-shot service sees), warm jobs hit the scene cache.

Acceptance bars:

* the warm-served image is pixel-identical (``atol=1e-9``) to the one-shot
  ``run_raytracing_farm`` image;
* warm jobs are at least 1.3x faster than cold one-shot runs (measured
  ~2.1x in the reference container; the bar leaves >=10% headroom);
* the service metrics actually account for the cache: one cold build,
  ``WARM_JOBS`` warm hits, nonzero setup seconds saved.

Results go to the ``bench_json`` CI artifact when ``BENCH_RESULTS_DIR`` is
set, *and* to ``BENCH_4.json`` at the repository root so the perf
trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.apps import RenderJob, RenderService, run_raytracing_farm
from repro.raytracer.scene import paper_scene
from repro.snet.runtime import ProcessRuntime

WIDTH = HEIGHT = 64
NUM_SPHERES = 2000
NODES = 2
TASKS = 8
WORKERS = 2
COLD_JOBS = 3
WARM_JOBS = 3
MIN_SPEEDUP = 1.3

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def make_scene():
    """A fresh, content-identical scene object (cold runs must rebuild its BVH)."""
    return paper_scene(num_spheres=NUM_SPHERES)


def run_one_shot():
    start = time.perf_counter()
    run = run_raytracing_farm(
        "static",
        runtime="process",
        width=WIDTH,
        height=HEIGHT,
        nodes=NODES,
        tasks=TASKS,
        scene=make_scene(),
        render_mode="packet",
        runtime_options={"workers": WORKERS},
        timeout=300.0,
    )
    return time.perf_counter() - start, run


@pytest.mark.skipif(
    not ProcessRuntime.fork_available(),
    reason="the service benchmark runs on the process backend (needs fork)",
)
def test_service_warm_vs_cold(bench_json):
    # cold arm: one-shot farm runs, full construction per frame
    cold_seconds = []
    oneshot = None
    for _ in range(COLD_JOBS):
        seconds, oneshot = run_one_shot()
        cold_seconds.append(seconds)

    # warm arm: one persistent service; job 0 builds the slot, the rest hit it
    warm_seconds = []
    with RenderService(
        "process",
        width=WIDTH,
        height=HEIGHT,
        render_mode="packet",
        runtime_options={"workers": WORKERS},
    ) as service:
        first = service.render(
            RenderJob(make_scene(), nodes=NODES, tasks=TASKS), timeout=300.0
        )
        warm_image = None
        for _ in range(WARM_JOBS):
            start = time.perf_counter()
            result = service.render(
                RenderJob(make_scene(), nodes=NODES, tasks=TASKS), timeout=300.0
            )
            warm_seconds.append(time.perf_counter() - start)
            assert result.warm, "second-and-later jobs must hit the scene cache"
            warm_image = result.image
        metrics = service.metrics()

    cold_mean = sum(cold_seconds) / len(cold_seconds)
    warm_mean = sum(warm_seconds) / len(warm_seconds)
    speedup = cold_mean / warm_mean

    print()
    print(f"  cold one-shot : {cold_mean:6.2f} s/job  {[f'{s:.2f}' for s in cold_seconds]}")
    print(f"  warm service  : {warm_mean:6.2f} s/job  {[f'{s:.2f}' for s in warm_seconds]}")
    print(f"  speedup       : {speedup:6.2f} x")
    print(f"  slot build    : {first.seconds:6.2f} s (cold job 0, includes setup)")
    print(f"  setup saved   : {metrics.setup_seconds_saved:6.2f} s over {metrics.warm_hits} warm hits")

    payload = {
        "benchmark": "service_warm_vs_cold",
        "width": WIDTH,
        "height": HEIGHT,
        "num_spheres": NUM_SPHERES,
        "nodes": NODES,
        "tasks": TASKS,
        "workers": WORKERS,
        "render_mode": "packet",
        "cold_jobs": COLD_JOBS,
        "warm_jobs": WARM_JOBS,
        "cold_seconds_mean": cold_mean,
        "warm_seconds_mean": warm_mean,
        "speedup": speedup,
        "warm_hit_rate": metrics.warm_hit_rate,
        "setup_seconds_saved": metrics.setup_seconds_saved,
        "warm_bytes_pickled": int(metrics.bytes_pickled),
        "cpu_count": os.cpu_count(),
    }
    bench_json("service_warm_vs_cold", payload)
    # the repo-root trajectory file (in addition to the CI artifact)
    (REPO_ROOT / "BENCH_4.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # correctness first: the warm path renders the exact one-shot image
    np.testing.assert_allclose(warm_image, oneshot.image, atol=1e-9)
    np.testing.assert_allclose(first.image, oneshot.image, atol=1e-9)
    assert metrics.cold_builds == 1 and metrics.warm_hits == WARM_JOBS
    assert metrics.setup_seconds_saved > 0.0

    assert speedup >= MIN_SPEEDUP, (
        f"warm-service speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
