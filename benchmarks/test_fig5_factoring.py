"""E1 — Fig. 5 (left): 8 nodes, simple factoring scheduling, tasks x tokens sweep.

Regenerates the series of the left-hand chart of Fig. 5: the runtime of the
dynamically load-balanced S-Net ray tracer on 8 nodes under *simple
factoring* scheduling, for every combination of tasks and tokens in
{8, 16, 32, 48, 64, 72} (tokens <= tasks).

The paper's qualitative findings asserted here:

* performance is generally best when 16 tokens are available (two per node,
  one solver instance per CPU);
* making every section an initial token (tokens == tasks) loses the benefit
  of dynamic scheduling and is clearly worse than the 16-token optimum.
"""

from collections import defaultdict

from repro.bench.figures import fig5_sweep
from repro.bench.reporting import format_fig5_table


def _sweep(settings):
    return fig5_sweep("factoring", settings)


def test_fig5_factoring(benchmark, settings):
    cells = benchmark.pedantic(_sweep, args=(settings,), rounds=1, iterations=1)
    print()
    print(format_fig5_table(cells, "Fig. 5 (left) - 8 nodes, simple factoring scheduling"))

    by_tasks = defaultdict(dict)
    for cell in cells:
        by_tasks[cell.tasks][cell.tokens] = cell.runtime_seconds

    # every configuration produced a complete picture and a sane runtime
    assert all(runtime > 0 for row in by_tasks.values() for runtime in row.values())

    # 16 tokens (one per CPU) is the sweet spot: for every task count that
    # allows it, 16 tokens is within 10% of the best configuration observed
    for tasks, row in by_tasks.items():
        if 16 in row:
            best = min(row.values())
            assert row[16] <= 1.10 * best, (tasks, row)

    # dynamic scheduling beats the degenerate fully-static assignment:
    # tokens == tasks is slower than the 16-token configuration
    for tasks, row in by_tasks.items():
        if tasks >= 32 and 16 in row and tasks in row:
            assert row[tasks] > row[16], (tasks, row)
