"""E10 — temporal tile cache: incremental re-rendering of an animation.

A 2000-sphere scene is animated by moving a 40-sphere cluster (2% of the
primitives) a few centimetres per frame.  Rendered through a warm
``RenderService`` slot, the temporal tile cache re-traces only the image
sections the edits can affect — the mover cluster's own row band plus any
tile whose shadows the moved boxes could touch — and re-emits cached pixels
for the rest.  The full-re-render arm runs the *same* warm service with
``incremental=False``, so the two arms differ only in the tile cache: same
farm shape, same warm slot, no setup cost in either measurement.

The scene is deliberately animation-shaped (and mostly matte: mirrors spawn
secondary rays, which dirty every tile they originate from): a dense static
cloud fills the upper image rows, the movers sit in a tight band near the
bottom, and the lights sit in the vertical gap between the two groups so
the conservative shadow-cone test can prove the cloud's tiles clean.

This benchmark is **1-CPU-safe** and noise-hardened: it measures work
*skipped* per frame, not parallel speedup; the two arms render each
animation frame back to back (so a slow container window hits both
equally) and the bars compare per-frame minima.

Acceptance bars:

* every incremental frame is pixel-identical (``atol=1e-9``) to a cold
  from-scratch render of the same scene state (the oracle renders a pickled
  snapshot through a fresh one-shot farm);
* incremental frames are at least 3x faster than warm full re-renders
  (measured ~5.6-6x in the reference container);
* with an all-dirty edit stream (a camera pan) incremental mode degrades
  to at most 1.05x the incremental-off frame time — the price of touch
  capture plus a planner that immediately reports "everything dirty"
  (measured ~1.02x);
* the counters stay honest: ``rays_cast`` counts only rays actually
  traced; skipped work is reported separately as ``tiles_reused`` /
  ``rays_saved``.

Results go to the ``bench_json`` CI artifact when ``BENCH_RESULTS_DIR`` is
set, *and* to ``BENCH_10.json`` at the repository root so the perf
trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib
import pickle
import time

import numpy as np

from repro.apps import RenderJob, RenderService, run_raytracing_farm
from repro.raytracer.camera import Camera
from repro.raytracer.geometry.primitives import Sphere
from repro.raytracer.materials import Material
from repro.raytracer.scene import Light, Scene
from repro.raytracer.vec import vec3

WIDTH = HEIGHT = 96
CLOUD_SPHERES = 1960
MOVERS = 40  # 2% of the 2000 primitives move per frame
NODES = 2
TASKS = 24
FRAMES = 4
PAN_FRAMES = 4
MIN_SPEEDUP = 3.0
MAX_ALL_DIRTY_OVERHEAD = 1.05

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def bench_scene(seed=5):
    """Static cloud up top, tight mover band at the bottom, lights between."""
    rng = np.random.RandomState(seed)
    objects = []
    for _ in range(CLOUD_SPHERES):
        pos = vec3(
            rng.uniform(-6.0, 6.0),
            rng.uniform(0.5, 4.5),
            rng.uniform(-14.0, -6.0),
        )
        r, g, b = rng.uniform(0.2, 0.9, size=3)
        objects.append(Sphere(pos, rng.uniform(0.12, 0.30), Material.matte(r, g, b)))
    for _ in range(MOVERS):
        pos = vec3(
            rng.uniform(-2.0, 2.0),
            rng.uniform(-4.3, -3.95),
            rng.uniform(-10.3, -9.7),
        )
        r, g, b = rng.uniform(0.3, 0.9, size=3)
        objects.append(Sphere(pos, rng.uniform(0.07, 0.12), Material.matte(r, g, b)))
    lights = [
        Light(vec3(-3.0, -1.5, -8.0), intensity=0.9),
        Light(vec3(3.0, -1.0, -12.0), intensity=0.6),
    ]
    return Scene(objects, lights, camera=Camera(width=WIDTH, height=HEIGHT))


def movers_of(scene):
    return [
        s
        for s in scene.bounded_objects
        if isinstance(s, Sphere) and s.center[1] < -3.0
    ]


def mover_deltas(frames, seed=17):
    rng = np.random.RandomState(seed)
    return [
        [rng.uniform(-0.04, 0.04, size=3) for _ in range(MOVERS)]
        for _ in range(frames)
    ]


def cold_oracle(scene):
    """From-scratch render of the scene's current state (fresh one-shot farm)."""
    snapshot = pickle.loads(pickle.dumps(scene))
    run = run_raytracing_farm(
        "static",
        width=WIDTH,
        height=HEIGHT,
        nodes=NODES,
        tasks=TASKS,
        scene=snapshot,
        render_mode="packet",
        incremental=False,
    )
    return run.image


class Arm:
    """One warm service + its own copy of the animated scene."""

    def __init__(self, incremental):
        self.scene = bench_scene()
        self.movers = movers_of(self.scene)
        assert len(self.movers) == MOVERS
        self.service = RenderService(
            width=WIDTH,
            height=HEIGHT,
            render_mode="packet",
            incremental=incremental,
        )
        self.seconds = []
        self.results = []

    def render(self, timed=True):
        start = time.perf_counter()
        result = self.service.render(
            RenderJob(self.scene, nodes=NODES, tasks=TASKS), timeout=300.0
        )
        if timed:
            self.seconds.append(time.perf_counter() - start)
            self.results.append(result)
        return result

    def close(self):
        self.service.close()


def run_animation(oracle_frames):
    """Both arms, same edit schedule, rendered back to back per frame."""
    arms = {True: Arm(True), False: Arm(False)}
    try:
        for arm in arms.values():
            # activation commit (identity update) + cold frame 0
            edit = arm.scene.begin_edit()
            for mover in arm.movers:
                edit.update(mover, center=mover.center)
            edit.commit()
            arm.render(timed=False)
        for frame_deltas in mover_deltas(FRAMES):
            for arm in arms.values():
                edit = arm.scene.begin_edit()
                for mover, delta in zip(arm.movers, frame_deltas):
                    edit.update(mover, center=mover.center + delta)
                edit.commit()
                arm.render()
            oracle_frames.append(cold_oracle(arms[True].scene))
        return arms[True], arms[False]
    finally:
        for arm in arms.values():
            arm.close()


def run_pan():
    """Both arms again, but every frame is an all-dirty camera edit."""
    arms = {True: Arm(True), False: Arm(False)}
    try:
        for arm in arms.values():
            edit = arm.scene.begin_edit()
            edit.set_camera(
                Camera(position=vec3(0.0, 1.0, 5.0), width=WIDTH, height=HEIGHT)
            )
            edit.commit()
            arm.render(timed=False)
        for frame in range(1, PAN_FRAMES + 1):
            for arm in arms.values():
                edit = arm.scene.begin_edit()
                edit.set_camera(
                    Camera(
                        position=vec3(0.02 * frame, 1.0, 5.0),
                        width=WIDTH,
                        height=HEIGHT,
                    )
                )
                edit.commit()
                arm.render()
        return arms[True], arms[False]
    finally:
        for arm in arms.values():
            arm.close()


def test_incremental_animation_speedup(bench_json):
    oracle_frames = []
    inc, full = run_animation(oracle_frames)

    # correctness first: every incremental frame matches its cold oracle
    for result, oracle in zip(inc.results, oracle_frames):
        np.testing.assert_allclose(result.image, oracle, atol=1e-9)

    # the cache actually engaged, and the counters are honest
    for result in inc.results:
        assert result.tiles_reused >= TASKS // 2
        assert result.rays_saved > 0
        assert 0 < result.rays_cast < WIDTH * HEIGHT
        assert result.rays_cast + result.rays_saved == WIDTH * HEIGHT
    for result in full.results:
        assert (result.tiles_reused, result.rays_saved) == (0, 0)
        assert result.rays_cast == WIDTH * HEIGHT

    # all-dirty degradation: a camera pan must cost ~nothing extra
    pan_inc, pan_full = run_pan()
    for result in pan_inc.results:
        assert (result.tiles_reused, result.rays_saved) == (0, 0)
        assert result.rays_cast == WIDTH * HEIGHT

    # per-frame minima: immune to one-off container stalls in either arm
    inc_best = min(inc.seconds)
    full_best = min(full.seconds)
    speedup = full_best / inc_best
    pan_overhead = min(pan_inc.seconds) / min(pan_full.seconds)

    print()
    print(f"  full re-render : {full_best:6.3f} s/frame  {[f'{s:.3f}' for s in full.seconds]}")
    print(f"  incremental    : {inc_best:6.3f} s/frame  {[f'{s:.3f}' for s in inc.seconds]}")
    print(f"  speedup        : {speedup:6.2f} x")
    print(f"  tiles reused   : {inc.results[0].tiles_reused}/{TASKS} per frame")
    print(f"  all-dirty pan  : {pan_overhead:6.3f} x overhead")

    payload = {
        "benchmark": "incremental_animation",
        "width": WIDTH,
        "height": HEIGHT,
        "num_spheres": CLOUD_SPHERES + MOVERS,
        "movers_per_frame": MOVERS,
        "nodes": NODES,
        "tasks": TASKS,
        "frames": FRAMES,
        "render_mode": "packet",
        "full_seconds_best": full_best,
        "incremental_seconds_best": inc_best,
        "speedup": speedup,
        "tiles_reused_per_frame": int(inc.results[0].tiles_reused),
        "rays_saved_per_frame": int(inc.results[0].rays_saved),
        "all_dirty_overhead": pan_overhead,
        "cpu_count": os.cpu_count(),
    }
    bench_json("incremental_animation", payload)
    (REPO_ROOT / "BENCH_10.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    assert pan_overhead <= MAX_ALL_DIRTY_OVERHEAD, (
        f"all-dirty overhead {pan_overhead:.3f}x > {MAX_ALL_DIRTY_OVERHEAD}x"
    )
