"""E3 — Fig. 6 (left): absolute runtimes of all five variants on 1-8 nodes.

Regenerates the grouped-bar chart of Fig. 6 (left): S-Net Static, S-Net
Static 2 CPU, MPI, MPI 2 Proc/Node and S-Net Best Dynamic on 1, 2, 4, 6 and
8 nodes, rendering the 3000x3000 reference scene.

Shape assertions (the paper's findings):

* on a single node the S-Net variants are no faster than the equivalent MPI
  runs (the S-Net runtime adds overhead);
* from two nodes onwards the S-Net static overhead is amortised: S-Net
  Static stays within ~15 % of the MPI baseline;
* every variant scales: more nodes never increase the runtime;
* the dynamically scheduled S-Net variant is the fastest variant of all at
  4, 6 and 8 nodes (the paper's headline result).
"""

from repro.bench.figures import fig6_runtimes
from repro.bench.reporting import format_fig6_table


def _runtimes(settings):
    return fig6_runtimes(settings)


def test_fig6_runtimes(benchmark, settings):
    table = benchmark.pedantic(_runtimes, args=(settings,), rounds=1, iterations=1)
    print()
    print(format_fig6_table(table))

    runtimes = {
        variant: {nodes: result.runtime_seconds for nodes, result in per_node.items()}
        for variant, per_node in table.items()
    }

    # single node: S-Net adds overhead over the equivalent MPI configuration
    assert runtimes["snet_static"][1] >= runtimes["mpi"][1] * 0.99
    assert runtimes["snet_static_2cpu"][1] >= runtimes["mpi_2proc"][1] * 0.99

    # amortisation from 2 nodes onwards: S-Net static close to MPI
    for nodes in (2, 4, 6, 8):
        assert runtimes["snet_static"][nodes] <= runtimes["mpi"][nodes] * 1.15

    # scaling: runtime decreases monotonically with node count for every variant
    for variant, per_node in runtimes.items():
        ordered = [per_node[n] for n in sorted(per_node)]
        assert all(b <= a * 1.02 for a, b in zip(ordered, ordered[1:])), (variant, ordered)

    # the dynamically scheduled variant wins at scale
    for nodes in (4, 6, 8):
        others = [runtimes[v][nodes] for v in runtimes if v != "snet_best_dynamic"]
        assert runtimes["snet_best_dynamic"][nodes] < min(others)

    # two processes/solvers per node beat one per node
    for nodes in (1, 2, 4, 6, 8):
        assert runtimes["mpi_2proc"][nodes] < runtimes["mpi"][nodes]
        assert runtimes["snet_static_2cpu"][nodes] < runtimes["snet_static"][nodes]
