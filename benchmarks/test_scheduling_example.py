"""E5 — the worked factoring example of Section V.

"Suppose a scene of 3000x3000 pixels is split along the y axis by dividing
it into 48 sections.  One possible scheduling is to split the scene into two
batches with the first batch containing 24 sections of size 93 and the
second batch the remaining 24 sections of size 32."
"""

from repro.bench.figures import scheduling_example


def test_scheduling_example(benchmark):
    result = benchmark.pedantic(scheduling_example, rounds=1, iterations=1)
    print()
    print("Factoring example:", result["batch_sizes"], "rows per section per batch")

    assert result["num_sections"] == 48
    assert result["batch_sizes"] == [93, 32]
    assert result["first_batch"] == [93] * 24
    # the final section absorbs the rounding remainder, all others are 32 rows
    assert result["second_batch"][:-1] == [32] * 23
    assert result["covers_image"]
