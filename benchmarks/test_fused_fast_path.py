"""The fused flat-BVH fast path versus the PR 2 packet path (BENCH_8).

One solver-sized workload — a 2000-sphere clustered scene at 64x64 — rendered
three ways:

* ``scalar``  — the per-pixel correctness oracle (rendered once);
* ``packet``  — the node-BVH packet path (min of 3);
* ``fused``   — the flat-BVH fused path: SoA traversal kernels, batched leaf
  intersection, preallocated per-tile scratch buffers (min of 3).

The fused path must be pixel-exact against the packet path, within
``atol=1e-9`` of the scalar oracle, and at least **1.5x** the packet path's
rays/sec (the observed in-container win is far larger; the bar only guards
against regressions).  The persisted ``BENCH_8.json`` additionally records
the traversal and allocation counters that explain *where* the time went:
node visits, batched-leaf dispatches and scratch-buffer reuse.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.raytracer import Camera, random_scene
from repro.raytracer.flatbvh import scene_flat_index
from repro.raytracer.tracer import (
    RayTracer,
    render,
    reset_scratch_stats,
    scratch_stats,
)

#: the benchmark workload: dense enough that traversal dominates, small
#: enough that the scalar oracle stays affordable in CI
NUM_SPHERES = 2000
WIDTH = HEIGHT = 64
ROUNDS = 3
MIN_SPEEDUP = 1.5

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def workload():
    scene = random_scene(num_spheres=NUM_SPHERES, clustering=0.4, seed=8)
    camera = Camera(width=WIDTH, height=HEIGHT)
    scene.prepare_for_broadcast()  # build the node BVH once, outside timing
    return scene, camera


def _min_of(rounds, fn):
    best = np.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_fused_fast_path_speedup(workload, bench_json):
    scene, camera = workload

    scalar_t0 = time.perf_counter()
    scalar_img = render(scene, camera, mode="scalar")
    scalar_seconds = time.perf_counter() - scalar_t0

    def run_packet():
        tracer = RayTracer(scene, camera)
        return tracer, tracer.render_rows_packet(0, camera.height)

    def run_fused():
        tracer = RayTracer(scene, camera)
        return tracer, tracer.render_rows_fused(0, camera.height)

    scene.index.stats.reset()
    packet_seconds, (packet_tracer, packet_img) = _min_of(ROUNDS, run_packet)
    node_visits_packet = scene.index.stats.node_visits

    scene_flat_index(scene)  # compile the flat BVH outside the timed region
    reset_scratch_stats()
    flat = scene_flat_index(scene)
    flat.stats.reset()
    fused_seconds, (fused_tracer, fused_img) = _min_of(ROUNDS, run_fused)
    node_visits_fused = flat.stats.node_visits
    scratch = scratch_stats()

    # correctness first: exact against the packet path, atol=1e-9 against
    # the per-pixel oracle, identical ray accounting
    assert np.array_equal(packet_img, fused_img)
    np.testing.assert_allclose(fused_img, scalar_img, atol=1e-9)
    assert packet_tracer.rays_cast == fused_tracer.rays_cast

    rays = fused_tracer.rays_cast
    packet_rps = rays / packet_seconds
    fused_rps = rays / fused_seconds
    speedup = packet_seconds / fused_seconds

    payload = {
        "workload": {
            "num_spheres": NUM_SPHERES,
            "width": WIDTH,
            "height": HEIGHT,
            "rays_cast": int(rays),
            "rounds": ROUNDS,
        },
        "scalar_seconds": scalar_seconds,
        "packet_seconds": packet_seconds,
        "fused_seconds": fused_seconds,
        "packet_rays_per_second": packet_rps,
        "fused_rays_per_second": fused_rps,
        "speedup_fused_vs_packet": speedup,
        "node_visits_packet": int(node_visits_packet),
        "node_visits_fused": int(node_visits_fused),
        "leaf_batches_fused": int(flat.leaf_batches),
        "scratch_allocations": int(scratch["allocations"]),
        "scratch_reuses": int(scratch["reuses"]),
        "max_abs_error_vs_scalar": float(np.abs(fused_img - scalar_img).max()),
    }
    bench_json("BENCH_8", payload)
    (REPO_ROOT / "BENCH_8.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    print(
        f"\nfused fast path: packet {packet_seconds:.3f}s "
        f"({packet_rps:,.0f} rays/s) -> fused {fused_seconds:.3f}s "
        f"({fused_rps:,.0f} rays/s), speedup {speedup:.2f}x"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"fused path speedup {speedup:.2f}x below the {MIN_SPEEDUP}x bar "
        f"(packet {packet_seconds:.3f}s, fused {fused_seconds:.3f}s)"
    )
    # warm frames must reuse the scratch pool, not reallocate per tile
    assert scratch["reuses"] > 0


def test_fused_scratch_buffers_are_warm_across_jobs(workload):
    scene, camera = workload
    tracer = RayTracer(scene, camera)
    reset_scratch_stats()
    tracer.render_rows_fused(0, 16)
    after_first = scratch_stats()
    tracer.render_rows_fused(16, 32)
    after_second = scratch_stats()
    assert after_second["allocations"] == after_first["allocations"]
    assert after_second["reuses"] > after_first["reuses"]
