"""E10 — fault-tolerance bookkeeping is (nearly) free on the happy path.

PR 6 gives the distributed runtime an in-flight ledger: every cross-
partition batch is journalled (by reference) until the worker acknowledges
``EOS``, which is what lets a dead node's work be re-dispatched to a
replacement.  The ledger must not tax runs where nothing dies — the
paper's runtime keeps its fault-tolerance machinery out of the steady-state
data path, and so must ours:

* **time** — a warm distributed frame with fault tolerance ON costs at
  most **1.1x** the same frame with fault tolerance OFF (measured ~1.0x:
  the journal is a list append of references per batch, no serialization,
  no copies);
* **wire** — journalling adds **zero** wire bytes: both configurations
  account the same frames on the links (within 2% — batch boundaries can
  shift with thread timing);
* **conformance** — both frames stay pixel-identical (``atol=1e-9``) to
  the threaded oracle.

Each configuration is timed as the min of ``RUNS`` warm runs (setup/fork
excluded), which keeps a loaded one-core CI runner from turning scheduler
noise into a verdict.  Timings go to the ``bench_json`` CI artifact when
``BENCH_RESULTS_DIR`` is set, *and* to ``BENCH_6.json`` at the repository
root so the perf trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.apps.networks import build_static_network
from repro.apps.runner import build_farm_backend, farm_inputs
from repro.apps.workloads import extract_image
from repro.raytracer.scene import paper_scene
from repro.snet.runtime import DistributedRuntime, ThreadedRuntime

WIDTH = HEIGHT = 64
NUM_SPHERES = 1000
TASKS = 8
NODES = 2
RUNS = 3
MAX_FT_OVERHEAD = 1.1
MAX_WIRE_RATIO = 1.02

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

fork_only = pytest.mark.skipif(
    not DistributedRuntime.fork_available(), reason="needs the fork start method"
)


def _build_farm(scene):
    backend = build_farm_backend(scene, WIDTH, HEIGHT, "records", "packet")
    network = build_static_network(backend, render_mode="packet")
    inputs = farm_inputs("static", scene, nodes=NODES, tasks=TASKS)
    return backend, network, inputs


def _measure_warm(scene, fault_tolerance):
    """Min-of-RUNS warm frame seconds for one runtime configuration."""
    backend, network, inputs = _build_farm(scene)
    runtime = DistributedRuntime(nodes=NODES, fault_tolerance=fault_tolerance)
    runtime.setup(network, broadcast=(scene,))
    try:
        best = float("inf")
        for _ in range(RUNS):
            backend.begin_job()
            start = time.perf_counter()
            runtime.run(network, list(inputs), timeout=150.0)
            best = min(best, time.perf_counter() - start)
        image = extract_image(backend)
        wire_bytes = runtime.bytes_pickled
        assert runtime.recoveries == 0  # the happy path: nothing died
    finally:
        runtime.teardown()
    return image, best, wire_bytes


@fork_only
def test_fault_tolerance_overhead(bench_json):
    scene = paper_scene(num_spheres=NUM_SPHERES)
    scene.prepare_for_broadcast()  # build the BVH once, outside every timing

    backend, network, inputs = _build_farm(scene)
    backend.begin_job()
    ThreadedRuntime().run(network, inputs, timeout=150.0)
    oracle = extract_image(backend)

    image_off, seconds_off, wire_off = _measure_warm(scene, fault_tolerance=False)
    image_on, seconds_on, wire_on = _measure_warm(scene, fault_tolerance=True)

    # conformance first: a fast wrong answer is not an optimisation
    np.testing.assert_allclose(image_off, oracle, atol=1e-9)
    np.testing.assert_allclose(image_on, oracle, atol=1e-9)

    overhead = seconds_on / seconds_off
    assert overhead <= MAX_FT_OVERHEAD, (seconds_on, seconds_off)

    # the journal holds references: nothing extra crosses the links
    assert wire_on > 0 and wire_off > 0
    wire_ratio = wire_on / wire_off
    assert wire_ratio <= MAX_WIRE_RATIO, (wire_on, wire_off)

    payload = {
        "benchmark": "fault_tolerance_overhead",
        "width": WIDTH,
        "height": HEIGHT,
        "tasks": TASKS,
        "nodes": NODES,
        "num_spheres": NUM_SPHERES,
        "runs": RUNS,
        "cpu_count": os.cpu_count(),
        "seconds_ft_off": seconds_off,
        "seconds_ft_on": seconds_on,
        "overhead_factor": overhead,
        "wire_bytes_ft_off": wire_off,
        "wire_bytes_ft_on": wire_on,
        "wire_ratio": wire_ratio,
    }
    bench_json("fault_tolerance_overhead", payload)
    (REPO_ROOT / "BENCH_6.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nfault tolerance on vs off: {seconds_on:.3f}s vs {seconds_off:.3f}s "
        f"(x{overhead:.3f}); wire {wire_on / 1024:.0f} KiB vs "
        f"{wire_off / 1024:.0f} KiB (x{wire_ratio:.3f})"
    )
