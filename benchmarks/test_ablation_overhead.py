"""Ablation A1 — S-Net runtime overhead sweep.

DESIGN.md calls out the per-record runtime overhead as the design parameter
behind the single-node gap of Fig. 6.  This benchmark sweeps the overhead
scale factor (0x, 1x, 10x, 50x of the calibrated values) on the 8-node best
dynamic configuration and verifies the expected monotone degradation.
"""

from repro.bench.experiments import ExperimentSettings, run_variant


def _sweep(factors):
    results = {}
    for factor in factors:
        settings = ExperimentSettings()
        if factor == 0.0:
            from repro.dsnet.config import DSNetConfig

            settings = ExperimentSettings(dsnet_config=DSNetConfig.zero_overhead())
        else:
            settings = settings.with_overhead_scale(factor)
        results[factor] = run_variant(settings, "snet_best_dynamic", 8).runtime_seconds
    return results


def test_overhead_ablation(benchmark):
    factors = (0.0, 1.0, 10.0, 50.0)
    results = benchmark.pedantic(_sweep, args=(factors,), rounds=1, iterations=1)
    print()
    for factor, runtime in results.items():
        print(f"  overhead x{factor:<5}: {runtime:8.1f} s")

    # runtime grows monotonically with the coordination overhead
    ordered = [results[f] for f in factors]
    assert all(b >= a for a, b in zip(ordered, ordered[1:]))
    # and the calibrated overhead costs less than 25% on top of the ideal runtime
    assert results[1.0] <= results[0.0] * 1.25
