"""E7 — measured speedup of the packet rendering path over the scalar oracle.

The paper's solver box is the farm's hot path; rendering a section one
pixel at a time through Python objects makes every runtime backend
interpreter-bound instead of coordination-bound.  The packet path renders a
whole section as NumPy ray arrays (masked BVH traversal, vectorized
shading; see :mod:`repro.raytracer.packet`).  This benchmark measures the
resulting single-invocation speedup on a 128x128 render of the standard
random scene and pins the two acceptance bars:

* the packet image is pixel-identical to the scalar image (atol 1e-9),
  with identical ray accounting;
* the packet path is at least 5x faster (measured ~20x on one core; the
  bar leaves headroom for loaded CI runners).

Timings are written as JSON via the ``bench_json`` fixture when
``BENCH_RESULTS_DIR`` is set, so CI accumulates per-PR trajectory data.
"""

import os
import time

import numpy as np

from repro.raytracer import Camera, RayTracer, random_scene

WIDTH = HEIGHT = 128
MIN_SPEEDUP = 5.0


def test_packet_speedup(bench_json):
    scene = random_scene(num_spheres=30, clustering=0.5, seed=7)
    camera = Camera(width=WIDTH, height=HEIGHT)
    scene.index  # build the BVH up front so neither path pays for it

    packet_tracer = RayTracer(scene, camera)
    start = time.perf_counter()
    packet = packet_tracer.render_rows_packet(0, HEIGHT)
    t_packet = time.perf_counter() - start

    scalar_tracer = RayTracer(scene, camera)
    start = time.perf_counter()
    scalar = scalar_tracer.render_rows(0, HEIGHT)
    t_scalar = time.perf_counter() - start

    speedup = t_scalar / t_packet
    print()
    print(f"  scalar : {t_scalar:7.2f} s")
    print(f"  packet : {t_packet:7.3f} s")
    print(f"  speedup: {speedup:7.2f} x")

    bench_json(
        "packet_speedup",
        {
            "benchmark": "packet_speedup",
            "width": WIDTH,
            "height": HEIGHT,
            "scalar_seconds": t_scalar,
            "packet_seconds": t_packet,
            "speedup": speedup,
            "rays_cast": int(scalar_tracer.rays_cast),
            "cpu_count": os.cpu_count(),
        },
    )

    # correctness first: same pixels, same number of rays traced
    np.testing.assert_allclose(packet, scalar, atol=1e-9)
    assert packet_tracer.rays_cast == scalar_tracer.rays_cast

    assert speedup >= MIN_SPEEDUP, (
        f"packet path speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
