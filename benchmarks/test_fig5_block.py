"""E2 — Fig. 5 (right): 8 nodes, block scheduling, tasks x tokens sweep.

Same sweep as E1 but with equally sized sections (block scheduling).  The
paper notes that block scheduling "produces the best results" together with
factoring and that with 16 tokens each node holds two tokens on average.
"""

from collections import defaultdict

from repro.bench.figures import fig5_sweep
from repro.bench.reporting import format_fig5_table


def _sweep(settings):
    return fig5_sweep("block", settings)


def test_fig5_block(benchmark, settings):
    cells = benchmark.pedantic(_sweep, args=(settings,), rounds=1, iterations=1)
    print()
    print(format_fig5_table(cells, "Fig. 5 (right) - 8 nodes, block scheduling"))

    by_tasks = defaultdict(dict)
    for cell in cells:
        by_tasks[cell.tasks][cell.tokens] = cell.runtime_seconds

    assert all(runtime > 0 for row in by_tasks.values() for runtime in row.values())

    # 16 tokens is at or near the optimum for every task count
    for tasks, row in by_tasks.items():
        if 16 in row:
            best = min(row.values())
            assert row[16] <= 1.10 * best, (tasks, row)

    # with a fixed 16-token budget, more (smaller) tasks never hurt much:
    # the 64/72-task rows are at least as good as the 16-task row
    sixteen_token_column = {
        tasks: row[16] for tasks, row in by_tasks.items() if 16 in row
    }
    if 16 in sixteen_token_column and 64 in sixteen_token_column:
        assert sixteen_token_column[64] <= sixteen_token_column[16] * 1.05

    # fully static assignment (tokens == tasks) is worse than the 16-token optimum
    for tasks, row in by_tasks.items():
        if tasks >= 32 and 16 in row and tasks in row:
            assert row[tasks] > row[16], (tasks, row)
