"""Ablation A2 — block vs. factoring scheduling under varying scene imbalance.

The paper reports that block scheduling and simple factoring both work well.
This ablation compares them on the 8-node dynamic configuration (64 tasks,
16 tokens) for a balanced scene and for an extremely clustered scene, and
additionally verifies that *both* beat the static fork-join distribution when
the scene is imbalanced.
"""

from repro.bench.experiments import ExperimentSettings, run_snet_dynamic, run_snet_static


def _compare(clustering):
    settings = ExperimentSettings(clustering=clustering)
    block = run_snet_dynamic(settings, 8, tasks=64, tokens=16, scheduling="block")
    factoring = run_snet_dynamic(settings, 8, tasks=64, tokens=16, scheduling="factoring")
    static = run_snet_static(settings, 8)
    return {
        "block": block.runtime_seconds,
        "factoring": factoring.runtime_seconds,
        "static": static.runtime_seconds,
    }


def test_scheduling_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {c: _compare(c) for c in (0.0, 0.45, 0.9)}, rounds=1, iterations=1
    )
    print()
    for clustering, row in results.items():
        print(
            f"  clustering={clustering:4.2f}  block={row['block']:7.1f}s  "
            f"factoring={row['factoring']:7.1f}s  static={row['static']:7.1f}s"
        )

    for clustering, row in results.items():
        # both dynamic schedulers beat the static distribution
        assert row["block"] < row["static"]
        assert row["factoring"] < row["static"]
        # and stay within 20% of each other (the paper found both competitive)
        ratio = row["block"] / row["factoring"]
        assert 0.8 <= ratio <= 1.25

    # the advantage of dynamic scheduling grows with scene imbalance
    gain_balanced = results[0.0]["static"] / results[0.0]["block"]
    gain_clustered = results[0.9]["static"] / results[0.9]["block"]
    assert gain_clustered > gain_balanced
