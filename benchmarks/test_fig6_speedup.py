"""E4 — Fig. 6 (right): speed-up versus MPI with 2 processes per node.

The right-hand chart of Fig. 6 normalises the S-Net Static 2 CPU and S-Net
Best Dynamic runtimes by the MPI 2 Proc/Node runtimes.  In the paper the
static S-Net variant stays below 1 (it never beats tuned MPI), while the
dynamically scheduled variant overtakes MPI between 2 and 4 nodes and
reaches roughly 1.4x at 8 nodes.
"""

from repro.bench.figures import fig6_runtimes, fig6_speedups
from repro.bench.reporting import format_speedup_table


def _speedups(settings):
    table = fig6_runtimes(
        settings, variants=("snet_static_2cpu", "mpi_2proc", "snet_best_dynamic")
    )
    return fig6_speedups(table)


def test_fig6_speedup(benchmark, settings):
    speedups = benchmark.pedantic(_speedups, args=(settings,), rounds=1, iterations=1)
    print()
    print(format_speedup_table(speedups))

    dynamic = speedups["snet_best_dynamic"]
    static_2cpu = speedups["snet_static_2cpu"]

    # the static S-Net variant does not overtake hand-tuned MPI
    assert all(value <= 1.05 for value in static_2cpu.values())

    # the dynamic variant overtakes MPI at scale and wins by a clear margin
    assert dynamic[8] > 1.25
    assert dynamic[6] > 1.2
    assert dynamic[4] > 1.0

    # the dynamic variant's advantage at scale is at least as large as on a
    # single node (the win comes from load balancing, which needs nodes)
    ordered = [dynamic[n] for n in sorted(dynamic)]
    assert ordered[-1] >= ordered[0]
    assert ordered[-1] >= max(ordered) * 0.9
