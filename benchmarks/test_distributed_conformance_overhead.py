"""E9 — distributed-backend conformance and cross-partition wire cost.

PR 5 turns the placement combinators into a real distributed runtime: the
farm's ``solver !@ <node>`` partitions execute on forked compute-node
worker processes and the rendered chunks come back over a pipe transport.
This benchmark pins the two properties that make that backend trustworthy
on a one-core CI container (a parallel-speedup bar would be meaningless
here — the process-backend benchmarks already cover the overlap story):

* **conformance** — the frame rendered across ≥ 2 real node workers is
  pixel-identical (``atol=1e-9``) to the threaded oracle;
* **wire discipline** — the 2000-sphere scene (≈1.1 MB serialized, BVH
  included) crosses the partition boundary **zero** times: it rides the
  fork-shared broadcast registry, so the bytes on the wire stay in
  pixels-plus-metadata territory (≈100 KB for a 64x64 frame, measured)
  instead of re-shipping the scene per batch.  Disabling the broadcast
  multiplies the wire volume by ~38x (measured) — the benchmark pins a
  conservative 8x.

Acceptance bars (measured values leave >=10% headroom on a loaded runner):

* distributed frame == threaded frame to 1e-9, with two distinct node
  worker pids distinct from the parent;
* wire bytes with the broadcast <= 2x the raw frame size (measured ~1.03x);
* wire bytes without the broadcast >= 8x the broadcast plane (measured ~38x);
* end-to-end wall clock <= 2.5x the threaded oracle (measured ~1.05x — the
  solver escaping the GIL roughly offsets the transport cost even on one
  core).

Timings go to the ``bench_json`` CI artifact when ``BENCH_RESULTS_DIR`` is
set, *and* to ``BENCH_5.json`` at the repository root so the perf
trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib
import pickle
import time

import numpy as np
import pytest

from repro.apps.networks import build_static_network
from repro.apps.runner import build_farm_backend, farm_inputs
from repro.apps.workloads import extract_image
from repro.raytracer.scene import paper_scene
from repro.snet.runtime import DistributedRuntime, ThreadedRuntime

WIDTH = HEIGHT = 64
NUM_SPHERES = 2000
TASKS = 8
NODES = 2
MAX_WIRE_VS_FRAME = 2.0
MIN_BROADCAST_REDUCTION = 8.0
MAX_OVERHEAD_FACTOR = 2.5

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

fork_only = pytest.mark.skipif(
    not DistributedRuntime.fork_available(), reason="needs the fork start method"
)


def _build_farm(scene):
    """One static-farm instance: (backend, network, inputs)."""
    backend = build_farm_backend(scene, WIDTH, HEIGHT, "records", "packet")
    network = build_static_network(backend, render_mode="packet")
    inputs = farm_inputs("static", scene, nodes=NODES, tasks=TASKS)
    return backend, network, inputs


def _render(runtime, backend, network, inputs):
    """One frame on ``runtime``; returns (image, seconds, wire bytes)."""
    backend.begin_job()
    start = time.perf_counter()
    runtime.run(network, inputs, timeout=150.0)
    seconds = time.perf_counter() - start
    return extract_image(backend), seconds, runtime.bytes_pickled


@fork_only
def test_distributed_conformance_and_wire_bytes(bench_json):
    scene = paper_scene(num_spheres=NUM_SPHERES)
    scene.prepare_for_broadcast()  # build the BVH once, outside every timing
    scene_bytes = len(pickle.dumps(scene, protocol=5))
    frame_bytes = WIDTH * HEIGHT * 3 * 8

    oracle_image, threaded_seconds, _ = _render(ThreadedRuntime(), *_build_farm(scene))

    # warm lifecycle on the *same* network object that setup() partitioned
    # (warm distribution is keyed to the network handed to setup)
    backend, network, inputs = _build_farm(scene)
    runtime = DistributedRuntime(nodes=NODES)
    runtime.setup(network, broadcast=(scene,))
    try:
        pids = list(runtime.worker_pids)
        image, distributed_seconds, wire_bytes = _render(
            runtime, backend, network, inputs
        )
    finally:
        runtime.teardown()

    # conformance: the partitioned render is the threaded render, and it
    # really ran on two worker processes
    np.testing.assert_allclose(image, oracle_image, atol=1e-9)
    assert len(set(pids)) == 2 and os.getpid() not in pids

    # wire discipline: pixels and metadata cross, the broadcast scene does
    # not (a single scene crossing alone would blow this bound)
    assert wire_bytes <= MAX_WIRE_VS_FRAME * frame_bytes, (wire_bytes, frame_bytes)
    assert wire_bytes < scene_bytes

    # the broadcast registry is what keeps it that way
    no_broadcast = DistributedRuntime(nodes=NODES, zero_copy=False)
    image_nb, _, wire_bytes_no_broadcast = _render(no_broadcast, *_build_farm(scene))
    np.testing.assert_allclose(image_nb, oracle_image, atol=1e-9)
    reduction = wire_bytes_no_broadcast / max(wire_bytes, 1)
    assert reduction >= MIN_BROADCAST_REDUCTION, (
        wire_bytes_no_broadcast,
        wire_bytes,
    )

    # overhead, not speedup: one core, so only the transport cost is visible
    overhead = distributed_seconds / threaded_seconds
    assert overhead <= MAX_OVERHEAD_FACTOR, (distributed_seconds, threaded_seconds)

    payload = {
        "benchmark": "distributed_conformance_overhead",
        "width": WIDTH,
        "height": HEIGHT,
        "tasks": TASKS,
        "nodes": NODES,
        "num_spheres": NUM_SPHERES,
        "render_mode": "packet",
        "cpu_count": os.cpu_count(),
        "scene_bytes": scene_bytes,
        "frame_bytes": frame_bytes,
        "threaded_seconds": threaded_seconds,
        "distributed_seconds": distributed_seconds,
        "overhead_factor": overhead,
        "wire_bytes_broadcast": wire_bytes,
        "wire_bytes_no_broadcast": wire_bytes_no_broadcast,
        "broadcast_reduction": reduction,
        "worker_pids": len(set(pids)),
    }
    bench_json("distributed_conformance_overhead", payload)
    (REPO_ROOT / "BENCH_5.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\ndistributed vs threaded: {distributed_seconds:.2f}s vs "
        f"{threaded_seconds:.2f}s (overhead x{overhead:.2f}); wire "
        f"{wire_bytes / 1024:.0f} KiB broadcast vs "
        f"{wire_bytes_no_broadcast / 1024:.0f} KiB without (x{reduction:.1f})"
    )
