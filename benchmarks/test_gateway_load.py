"""E10 — multi-tenant job storm through the gateway (load + fairness).

Four tenants with heavily skewed Poisson arrival rates replay a
deterministic storm (``tenant_job_storm``) against the gateway on one CPU.
The point is not parallel speedup (the container has 1 CPU) but the *front
door's* production properties under overload:

* **zero lost jobs** — every request is answered: served, or rejected with
  a structured ``retry_after`` (rate quota, pending cap or service
  backpressure).  Nothing hangs, nothing disappears;
* **bounded queue latency** — the service queue-wait p95 stays under a bar
  calibrated from the measured warm job time *in this container* (so the
  bar tracks the machine, not a hard-coded second count);
* **the warm pool earns its keep** — the same storm replayed against a
  single-slot cache (PR 4's behaviour) yields a strictly worse warm-hit
  rate than the pooled gateway arm.

The storm is sized from a calibration render: arrivals are rescaled so the
offered load is ~75% of the measured single-CPU service capacity — enough
pressure to exercise queueing and admission, not a tar pit.

Results go to the ``bench_json`` CI artifact when ``BENCH_RESULTS_DIR`` is
set, *and* to ``BENCH_9.json`` at the repository root.
"""

import json
import os
import pathlib
import threading
import time

from repro.apps import (
    GatewayClient,
    RenderGateway,
    RenderJob,
    RenderService,
    TenantPolicy,
    scene_from_spec,
    tenant_job_storm,
)

WIDTH = HEIGHT = 24
TASKS = 4
NUM_SPHERES = 20
NUM_SCENES = 6
REQUESTS_TOTAL = 60
BASELINE_REQUESTS = 30
UTILIZATION = 0.75
P95_WARM_MULTIPLE = 25.0  # queue-wait p95 bar, in warm-job units

# nominal jobs/second per tenant before rescaling to container speed —
# the *skew* (8:3:2:1) is what matters, not the absolute numbers
RATES = {"heavy": 8.0, "steady": 3.0, "bursty": 2.0, "light": 1.0}
WEIGHTS = {"heavy": 4.0, "steady": 2.0, "bursty": 1.0, "light": 1.0}

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

SCENE_SPECS = [
    {"kind": "animation", "frames": NUM_SCENES, "frame": i,
     "num_spheres": NUM_SPHERES}
    for i in range(NUM_SCENES)
]


def calibrate_warm_seconds():
    """Measured warm job time for this workload in this container.

    ``incremental=False``: this benchmark sizes the storm from the cost of a
    *full* warm render.  Animation scenes carry a mutation journal, so with
    the temporal tile cache on, re-rendering an unchanged scene is nearly
    free and the calibrated duration would collapse — the storm would then
    measure socket overhead, not admission under render load.
    """
    with RenderService("threaded", width=WIDTH, height=HEIGHT,
                       max_scenes=1, incremental=False) as service:
        scene = scene_from_spec(SCENE_SPECS[0])
        service.render(RenderJob(scene, tasks=TASKS), timeout=120.0)
        samples = []
        for _ in range(3):
            result = service.render(RenderJob(scene, tasks=TASKS), timeout=120.0)
            assert result.warm
            samples.append(result.seconds)
    return sum(samples) / len(samples)


def replay_storm(gateway, storm, duration):
    """Replay the storm against ``gateway``; every tenant counts its replies.

    One pipelined connection per tenant: a single sender thread fires each
    request at its scheduled offset, reader threads drain responses.  Returns
    ``{tenant: [reply, ...]}`` with exactly one reply per sent request.
    """
    tenants = sorted({req.tenant for req in storm})
    clients = {t: GatewayClient(gateway.host, gateway.port, timeout=300.0)
               for t in tenants}
    sent = {t: sum(1 for r in storm if r.tenant == t) for t in tenants}
    replies = {t: [] for t in tenants}

    def reader(tenant):
        for _ in range(sent[tenant]):
            replies[tenant].append(clients[tenant].recv())

    readers = [threading.Thread(target=reader, args=(t,), name=f"reader-{t}")
               for t in tenants]
    for thread in readers:
        thread.start()
    start = time.perf_counter()
    for req in storm:
        delay = req.at * duration - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        clients[req.tenant].send({
            "op": "render", "tenant": req.tenant, "scene": req.scene,
            "tasks": TASKS, "priority": req.priority,
        })
    for thread in readers:
        thread.join(300.0)
    alive = [t.name for t in readers if t.is_alive()]
    for client in clients.values():
        client.close()
    assert not alive, f"reader threads hung (lost replies): {alive}"
    return replies


def run_arm(storm, duration, *, max_scenes):
    gateway = RenderGateway(
        runtime="threaded",
        width=WIDTH,
        height=HEIGHT,
        max_scenes=max_scenes,
        max_queue=32,
        # the storm repeats each scene unchanged; keep the tile cache off so
        # every served job costs a full render (see calibrate_warm_seconds)
        incremental=False,
        tenants={
            name: TenantPolicy(
                weight=WEIGHTS[name],
                # the heavy tenant's quota sits below its arrival rate, so
                # part of its flood is rejected at the door with retry-after
                rate=(0.6 * RATES["heavy"] * REQUESTS_TOTAL
                      / (sum(RATES.values()) * duration)
                      if name == "heavy" else None),
                burst=4.0,
                max_pending=16,
            )
            for name in RATES
        },
    )
    with gateway:
        wall = time.perf_counter()
        replies = replay_storm(gateway, storm, duration)
        wall = time.perf_counter() - wall
        with GatewayClient(gateway.host, gateway.port) as client:
            doc = client.metrics()
    return replies, doc, wall


def test_gateway_job_storm(bench_json):
    warm_seconds = calibrate_warm_seconds()
    # schedule length for ~UTILIZATION of one CPU: N jobs of warm_seconds
    # each, spread over N * warm / utilization seconds of arrivals
    duration = REQUESTS_TOTAL * warm_seconds / UTILIZATION
    storm = tenant_job_storm(
        RATES, requests_total=REQUESTS_TOTAL, scene_specs=SCENE_SPECS, seed=9,
    )
    # normalize arrivals to [0, 1]; replay_storm scales by `duration`
    span = max(req.at for req in storm)
    for req in storm:
        req.at /= span

    replies, doc, wall = run_arm(storm, duration, max_scenes=NUM_SCENES)

    # --- zero lost jobs: one structured reply per request, per tenant -------
    outcomes = {}
    for tenant, tenant_replies in sorted(replies.items()):
        expected = sum(1 for r in storm if r.tenant == tenant)
        assert len(tenant_replies) == expected
        ok = sum(1 for r in tenant_replies if r["status"] == "ok")
        rejected = [r for r in tenant_replies if r["status"] == "rejected"]
        assert ok + len(rejected) == expected, (
            f"tenant {tenant} lost replies: "
            f"{[r for r in tenant_replies if r['status'] not in ('ok', 'rejected')]}"
        )
        for r in rejected:
            assert r["retry_after"] > 0.0
        outcomes[tenant] = {"sent": expected, "served": ok,
                            "rejected": len(rejected)}

    # the heavy tenant's over-quota flood was clipped at the door...
    assert outcomes["heavy"]["rejected"] > 0, (
        "the heavy tenant was never rate-limited; the storm is not "
        "exercising admission control"
    )
    # ...while every request the quieter tenants sent was served
    for tenant in ("steady", "light"):
        assert outcomes[tenant]["rejected"] == 0
        assert outcomes[tenant]["served"] == outcomes[tenant]["sent"]

    # --- bounded queue latency, calibrated to this container ----------------
    p95 = doc["service"]["latency"]["queue_wait"]["p95"]
    p50 = doc["service"]["latency"]["queue_wait"]["p50"]
    p95_bar = max(2.0, P95_WARM_MULTIPLE * warm_seconds)
    assert p95 <= p95_bar, (
        f"queue-wait p95 {p95:.3f}s exceeds the calibrated bar {p95_bar:.3f}s "
        f"(warm job {warm_seconds * 1000:.1f} ms)"
    )
    # fairness at the latency level: the lightest tenant is not the one
    # absorbing the queueing caused by the heavy tenant's flood
    light_p95 = doc["service"]["tenants"]["light"]["queue_wait"]["p95"]
    assert light_p95 <= p95_bar

    # --- the warm pool beats the single-slot cache on the same storm --------
    warm_hit_rate = doc["service"]["warm_hit_rate"]
    baseline_storm = tenant_job_storm(
        RATES, requests_total=BASELINE_REQUESTS, scene_specs=SCENE_SPECS,
        seed=9,
    )
    baseline_span = max(req.at for req in baseline_storm)
    for req in baseline_storm:
        req.at /= baseline_span
    baseline_duration = duration * BASELINE_REQUESTS / REQUESTS_TOTAL
    _, baseline_doc, _ = run_arm(
        baseline_storm, baseline_duration, max_scenes=1
    )
    baseline_hit_rate = baseline_doc["service"]["warm_hit_rate"]
    assert warm_hit_rate >= baseline_hit_rate, (
        f"pooled warm-hit rate {warm_hit_rate:.2%} fell below the "
        f"single-slot baseline {baseline_hit_rate:.2%}"
    )

    served_total = sum(o["served"] for o in outcomes.values())
    print()
    print(f"  warm job      : {warm_seconds * 1000:7.1f} ms (calibration)")
    print(f"  storm         : {REQUESTS_TOTAL} requests / 4 tenants over "
          f"{duration:.1f}s target ({wall:.1f}s wall)")
    for tenant, o in sorted(outcomes.items()):
        print(f"    {tenant:<8} sent {o['sent']:3d}  served {o['served']:3d}  "
              f"rejected {o['rejected']:3d}")
    print(f"  queue wait    : p50 {p50 * 1000:7.1f} ms   p95 {p95 * 1000:7.1f} ms "
          f"(bar {p95_bar * 1000:.0f} ms)")
    print(f"  warm hit rate : {warm_hit_rate:6.2%} pooled vs "
          f"{baseline_hit_rate:6.2%} single-slot baseline")

    payload = {
        "benchmark": "gateway_job_storm",
        "width": WIDTH,
        "height": HEIGHT,
        "tasks": TASKS,
        "num_scenes": NUM_SCENES,
        "requests_total": REQUESTS_TOTAL,
        "utilization_target": UTILIZATION,
        "rates": RATES,
        "weights": WEIGHTS,
        "warm_job_seconds": warm_seconds,
        "storm_duration_seconds": duration,
        "wall_seconds": wall,
        "served_total": served_total,
        "outcomes": outcomes,
        "queue_p50_seconds": p50,
        "queue_p95_seconds": p95,
        "queue_p95_bar_seconds": p95_bar,
        "warm_hit_rate": warm_hit_rate,
        "baseline_single_slot_hit_rate": baseline_hit_rate,
        "gateway_requests": doc["gateway"]["requests"],
        "gateway_rejected": doc["gateway"]["rejected"],
        "cpu_count": os.cpu_count(),
    }
    bench_json("gateway_job_storm", payload)
    (REPO_ROOT / "BENCH_9.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
