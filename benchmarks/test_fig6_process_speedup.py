"""E6 — measured (not simulated) speedup of the process runtime backend.

Fig. 6 of the paper reports *real* wall-clock speedup of the S-Net
ray-tracing farm on multicore/cluster hardware.  The simulated ``dsnet``
backend reproduces the figure's shape in virtual time; this benchmark closes
the remaining gap by demonstrating measured speedup with the ``process``
backend: the same Fig. 2 network, real pixels, solver boxes executing on a
forked worker pool.

The solver's per-section cost is padded with a fixed latency standing in for
the paper's reference-CPU render time (a 350 MHz section on the PIII testbed
took seconds, while our 32x32 render takes milliseconds).  Padding with
latency rather than CPU spin keeps the measurement meaningful on single-core
CI runners too: what is measured is that the process backend genuinely
overlaps independent solver invocations across pool workers, which is
exactly the property the GIL denies the threaded backend for CPU-bound
boxes.
"""

import os
import time

import pytest

from repro.apps import (
    RealRenderBackend,
    build_static_network,
    extract_image,
    initial_record,
)
from repro.raytracer import Camera, random_scene, render
from repro.raytracer.image import image_rms_difference
from repro.snet.runtime import ProcessRuntime, get_runtime

#: stand-in for the reference CPU's per-section render cost (seconds)
SECTION_COST = 0.2
NODES = 4
TASKS = 8


class PaddedRenderBackend(RealRenderBackend):
    """Real pixels, plus the modelled per-section latency of the testbed CPU."""

    def render_section(self, section):
        time.sleep(SECTION_COST)
        return super().render_section(section)


def _render_once(scene, camera, workers: int):
    backend = PaddedRenderBackend(scene, camera)
    network = build_static_network(backend)
    runtime = get_runtime("process", workers=workers, chunk_size=1)
    assert isinstance(runtime, ProcessRuntime)
    start = time.perf_counter()
    runtime.run(
        network, [initial_record(scene, nodes=NODES, tasks=TASKS)], timeout=120.0
    )
    elapsed = time.perf_counter() - start
    return extract_image(backend), elapsed


@pytest.mark.skipif(
    not ProcessRuntime.fork_available(),
    reason="process backend needs the fork start method",
)
def test_fig6_process_speedup(bench_json):
    scene = random_scene(num_spheres=8, clustering=0.5, seed=7)
    camera = Camera(width=32, height=32)
    reference = render(scene, camera)

    image_serial, t_serial = _render_once(scene, camera, workers=1)
    image_parallel, t_parallel = _render_once(scene, camera, workers=NODES)
    speedup = t_serial / t_parallel

    print()
    print(f"  1 worker : {t_serial:6.2f} s")
    print(f"  {NODES} workers: {t_parallel:6.2f} s")
    print(f"  speedup  : {speedup:6.2f} x")

    bench_json(
        "fig6_process_speedup",
        {
            "benchmark": "fig6_process_speedup",
            "workers": NODES,
            "tasks": TASKS,
            "section_cost_seconds": SECTION_COST,
            "serial_seconds": t_serial,
            "parallel_seconds": t_parallel,
            "speedup": speedup,
            "cpu_count": os.cpu_count(),
        },
    )

    # both configurations must compute the exact sequential image
    assert image_rms_difference(image_serial, reference) == 0.0
    assert image_rms_difference(image_parallel, reference) == 0.0

    # the acceptance bar: real overlap of solver invocations.  The ideal
    # ratio for 8 equal sections on 4 workers is 4x; 1.5x leaves generous
    # headroom for pool dispatch and marshalling overhead on loaded CI boxes.
    assert speedup >= 1.5, f"process backend speedup {speedup:.2f}x < 1.5x"
