"""E8 — measured end-to-end win of the zero-copy shared-memory data plane.

PR 1 gave the farm a real process backend and PR 2 a vectorized solver, but
the process *data plane* still pickled the scene (plus its BVH) into every
solver batch and shipped every rendered chunk back as a pickled float64
array.  The zero-copy plane broadcasts the scene through the fork-shared
registry once, renders into a ``multiprocessing.shared_memory`` frame
buffer, and passes only metadata records — this benchmark measures both the
wall-clock effect and the serialization-volume effect on the paper-sized
workload (the 300-sphere reference scene at 256x256, packet solver).

The workload is a dense variant of the paper's reference scene (2000
spheres): the original measurement renders a heavyweight 3000x3000 scene,
so the serialized scene-plus-BVH description (~1.1 MB here) is the part of
the record payload the legacy plane keeps re-shipping — 64 sections at one
record per batch re-pickle it 64 times per frame, which is exactly the
pathology the broadcast layer removes.

Acceptance bars:

* images from both planes are pixel-identical to the sequential packet
  render (and therefore to each other);
* the shared plane is at least 1.3x faster end-to-end than the PR 2
  record-pickling plane under identical batching (measured ~1.5x on one
  core; the bar leaves headroom for loaded CI runners);
* the instrumented counter shows at least a 10x reduction in bytes pickled
  per frame (measured ~1900x).

Timings go to the ``bench_json`` CI artifact when ``BENCH_RESULTS_DIR`` is
set, *and* to ``BENCH_3.json`` at the repository root so the perf
trajectory is readable straight from the checkout.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.apps import run_raytracing_farm
from repro.raytracer import Camera, render
from repro.raytracer.scene import paper_scene
from repro.snet.runtime import ProcessRuntime

WIDTH = HEIGHT = 256
NUM_SPHERES = 2000
TASKS = 64
NODES = 4
WORKERS = 2
MIN_SPEEDUP = 1.3
MIN_BYTES_REDUCTION = 10.0

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _run_plane(scene, data_plane: str, zero_copy: bool):
    return run_raytracing_farm(
        "static",
        runtime="process",
        width=WIDTH,
        height=HEIGHT,
        nodes=NODES,
        tasks=TASKS,
        scene=scene,
        render_mode="packet",
        data_plane=data_plane,
        # identical batching on both planes: the comparison isolates the
        # data plane itself, not the autotuner
        runtime_options={"workers": WORKERS, "chunk_size": 1, "zero_copy": zero_copy},
        timeout=600.0,
    )


@pytest.mark.skipif(
    not ProcessRuntime.fork_available(),
    reason="process backend needs the fork start method",
)
def test_shared_memory_speedup(bench_json):
    scene = paper_scene(num_spheres=NUM_SPHERES)
    scene.index  # build the BVH once up front; both planes start prepared
    reference = render(scene, Camera(width=WIDTH, height=HEIGHT), mode="packet")

    # both planes go through the runtime's explicit protocol-5 serializer
    # (the instrumentation layer), so the records baseline pays one extra
    # memcpy of pre-pickled bytes per batch vs the literal PR 2 pool pickler
    # — sub-millisecond against the ~110 ms/batch of scene object-graph
    # pickling this PR eliminates, i.e. the comparison is fair to <3%
    records = _run_plane(scene, data_plane="records", zero_copy=False)
    shared = _run_plane(scene, data_plane="shared", zero_copy=True)

    speedup = records.seconds / shared.seconds
    bytes_reduction = records.bytes_pickled / max(1, shared.bytes_pickled)

    print()
    print(f"  records plane: {records.seconds:7.2f} s  "
          f"({records.bytes_pickled / 1e6:8.2f} MB pickled)")
    print(f"  shared plane : {shared.seconds:7.2f} s  "
          f"({shared.bytes_pickled / 1e6:8.2f} MB pickled)")
    print(f"  speedup      : {speedup:7.2f} x")
    print(f"  bytes ratio  : {bytes_reduction:7.1f} x")

    payload = {
        "benchmark": "shared_memory_speedup",
        "width": WIDTH,
        "height": HEIGHT,
        "num_spheres": NUM_SPHERES,
        "tasks": TASKS,
        "workers": WORKERS,
        "render_mode": "packet",
        "records_seconds": records.seconds,
        "shared_seconds": shared.seconds,
        "speedup": speedup,
        "records_bytes_pickled": records.bytes_pickled,
        "shared_bytes_pickled": shared.bytes_pickled,
        "bytes_reduction": bytes_reduction,
        "rays_cast": int(shared.rays_cast),
        "cpu_count": os.cpu_count(),
    }
    bench_json("shared_memory_speedup", payload)
    # the repo-root trajectory file the feature-requester reads (in addition
    # to the CI artifact): wall-clock and bytes-pickled-per-frame together
    (REPO_ROOT / "BENCH_3.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # correctness first: both planes compute the exact sequential image
    np.testing.assert_allclose(records.image, reference, atol=1e-9)
    np.testing.assert_allclose(shared.image, reference, atol=1e-9)
    assert shared.rays_cast == records.rays_cast

    assert bytes_reduction >= MIN_BYTES_REDUCTION, (
        f"bytes-pickled reduction {bytes_reduction:.1f}x < {MIN_BYTES_REDUCTION}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"shared-memory data plane speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
