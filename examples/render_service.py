"""A persistent render farm serving an animation from warm runtimes.

One-shot farm runs (`run_raytracing_farm`) pay the full setup — BVH build,
process-pool fork, scene broadcast, shared-frame registration — before every
frame.  The `RenderService` pays it once per *scene* and serves every later
job on that scene from a warm slot: same pool, same broadcast handle, same
shared frame buffer.

This demo streams a looping animation (`animation_scenes`: a mirror sphere
orbiting the paper-style sphere cloud) through the service twice.  The first
pass builds one warm slot per keyframe (cold); the second pass replays
content-identical frames and is served entirely from the scene cache — watch
the per-frame wall-clock drop and the warm-hit metrics climb.

Run with:  python examples/render_service.py [width] [height] [runtime] [frames] [loops]

where ``runtime`` is ``threaded`` (default) or ``process``.
"""

import sys

from repro.apps import RenderJob, RenderService, animation_scenes


def main(
    width: int = 64,
    height: int = 64,
    runtime: str = "threaded",
    frames: int = 3,
    loops: int = 2,
) -> None:
    service = RenderService(
        runtime,
        width=width,
        height=height,
        render_mode="packet",
        max_scenes=frames,
        runtime_options={"workers": 2} if runtime == "process" else None,
    )
    print(f"render service up: {runtime} runtime, {width}x{height}, "
          f"cache for {frames} scenes")
    with service:
        for loop in range(loops):
            # submit the whole pass up front: the bounded queue applies
            # backpressure, the scheduler serves FIFO within priority
            futures = [
                service.submit(RenderJob(frame, nodes=2, tasks=4,
                                         label=f"loop{loop}/frame{i}"))
                # rebuild=True: independent keyframe scenes, so all frames
                # can be submitted up front (the in-place AnimationSequence
                # mutates one scene and must be rendered frame by frame)
                for i, frame in enumerate(animation_scenes(frames, rebuild=True))
            ]
            for future in futures:
                result = future.result(timeout=300.0)
                kind = "warm" if result.warm else "cold"
                print(f"  {result.job.label}: {kind:4s}  "
                      f"render {result.seconds:6.3f}s  "
                      f"(queued {result.queued_seconds:.3f}s, "
                      f"{result.rays_cast} rays)")
        metrics = service.metrics()
        print(f"served {metrics.jobs_served} jobs: "
              f"{metrics.warm_hits} warm / {metrics.cold_builds} cold "
              f"(hit rate {metrics.warm_hit_rate:.0%}), "
              f"setup seconds saved {metrics.setup_seconds_saved:.2f}")
    print(f"service state after close: {service.state}")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        int(args[0]) if len(args) > 0 else 64,
        int(args[1]) if len(args) > 1 else 64,
        args[2] if len(args) > 2 else "threaded",
        int(args[3]) if len(args) > 3 else 3,
        int(args[4]) if len(args) > 4 else 2,
    )
