"""Reproduce a slice of the paper's evaluation on the simulated cluster.

Runs the five Fig. 6 variants on 2 and 8 simulated nodes (the full sweep
lives in ``benchmarks/``) and prints the runtimes next to the values the
paper reports, plus the Fig. 5 token sweep for 64 tasks.

Run with:  python examples/cluster_experiment.py
"""

from repro.bench.experiments import ExperimentSettings, run_snet_dynamic, run_variant
from repro.bench.paper_data import PAPER_FIG6_RUNTIMES


def main() -> None:
    settings = ExperimentSettings()

    print("Fig. 6 slice - absolute runtimes (simulated seconds, paper seconds)")
    for variant in ("mpi", "mpi_2proc", "snet_static", "snet_static_2cpu", "snet_best_dynamic"):
        row = []
        for nodes in (2, 8):
            result = run_variant(settings, variant, nodes)
            paper = PAPER_FIG6_RUNTIMES[variant][nodes]
            row.append(f"{nodes} nodes: {result.runtime_seconds:7.1f}s (paper {paper:7.1f}s)")
        print(f"  {variant:<20}", "   ".join(row))

    print()
    print("Fig. 5 slice - 8 nodes, 64 tasks, block scheduling, token sweep")
    for tokens in (8, 16, 32, 64):
        result = run_snet_dynamic(settings, 8, tasks=64, tokens=tokens, scheduling="block")
        print(f"  tokens={tokens:<3} runtime={result.runtime_seconds:7.1f}s "
              f"mean CPU utilisation={result.mean_utilisation:5.2f}")

    print()
    print("The 16-token configuration (two tokens per node, one per CPU) is the")
    print("sweet spot the paper reports; making every task an initial token")
    print("degenerates into the imbalanced static distribution.")


if __name__ == "__main__":
    main()
