"""The paper's static fork-join ray tracer (Fig. 2), rendering a real image.

Builds the ``splitter .. solver!@<node> .. merger .. genImg`` network over
the real render backend, runs it on the threaded runtime, verifies the result
against a sequential render and writes the picture to ``raytraced.ppm``.

Run with:  python examples/raytracing_static.py [width] [height]
"""

import sys
import time

from repro.apps import (
    RealRenderBackend,
    build_static_network,
    extract_image,
    initial_record,
)
from repro.raytracer import Camera, random_scene, render, to_ppm
from repro.raytracer.image import image_rms_difference
from repro.snet.runtime import Tracer, run_threaded


def main(width: int = 96, height: int = 96) -> None:
    scene = random_scene(num_spheres=40, clustering=0.5, seed=7)
    camera = Camera(width=width, height=height)

    # sequential reference (Algorithm 1 of the paper)
    t0 = time.perf_counter()
    reference = render(scene, camera)
    sequential_time = time.perf_counter() - t0

    # the S-Net coordinated version: 4 abstract nodes, 8 sections
    backend = RealRenderBackend(scene, camera)
    network = build_static_network(backend)
    tracer = Tracer()
    t0 = time.perf_counter()
    run_threaded(network, [initial_record(scene, nodes=4, tasks=8)], tracer=tracer, timeout=300.0)
    coordinated_time = time.perf_counter() - t0

    image = extract_image(backend)
    difference = image_rms_difference(image, reference)
    print(f"sequential render : {sequential_time:6.2f} s")
    print(f"S-Net coordinated : {coordinated_time:6.2f} s "
          "(threaded runtime; the GIL prevents real speed-ups in pure Python)")
    print(f"pixel difference  : {difference:.2e} (must be 0: same algorithm, same image)")
    print(f"records traced    : {tracer.count('consume')} consumed, "
          f"{tracer.count('produce')} produced")

    with open("raytraced.ppm", "wb") as handle:
        handle.write(to_ppm(image))
    print("wrote raytraced.ppm")


if __name__ == "__main__":
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 96
    main(width, height)
