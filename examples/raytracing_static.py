"""The paper's static fork-join ray tracer (Fig. 2), rendering a real image.

Builds the ``splitter .. solver!@<node> .. merger .. genImg`` network over
the real render backend, runs it on a selectable runtime backend, verifies
the result against a sequential render and writes the picture to
``raytraced.ppm``.

Run with:  python examples/raytracing_static.py [width] [height] [runtime] [mode]

where ``runtime`` is ``threaded`` (default), ``process`` or
``distributed``; the process backend executes the solver boxes on a forked
worker pool and is the one that shows real wall-clock speedup on a
multi-core host, while the distributed backend honours the network's
``solver !@ <node>`` placement for real — each ``<node>`` tag value's
solver replica runs on its own forked compute-node process.  ``mode`` is
``scalar`` (default, one ray at a time) or ``packet`` (NumPy ray packets,
an order of magnitude faster per solver invocation).
"""

import sys
import time

from repro.apps import run_raytracing_farm
from repro.raytracer import Camera, random_scene, render, to_ppm
from repro.raytracer.image import image_rms_difference
from repro.snet.runtime import ProcessRuntime, Tracer


def main(
    width: int = 96, height: int = 96, runtime: str = "threaded", mode: str = "scalar"
) -> None:
    scene = random_scene(num_spheres=40, clustering=0.5, seed=7)
    camera = Camera(width=width, height=height)

    # sequential reference (Algorithm 1 of the paper), same render mode
    t0 = time.perf_counter()
    reference = render(scene, camera, mode=mode)
    sequential_time = time.perf_counter() - t0

    # the S-Net coordinated version: 4 abstract nodes, 8 sections
    tracer = Tracer()
    run = run_raytracing_farm(
        "static",
        runtime=runtime,
        width=width,
        height=height,
        nodes=4,
        tasks=8,
        scene=scene,
        runtime_options={"tracer": tracer},
        timeout=300.0,
        render_mode=mode,
    )

    difference = image_rms_difference(run.image, reference)
    if runtime == "process" and not ProcessRuntime.fork_available():
        process_note = "process runtime WITHOUT fork support: degraded to threads"
    else:
        process_note = "process runtime; solver boxes run on a forked worker pool"
    note = {
        "threaded": "threaded runtime; the GIL prevents real speed-ups in pure Python",
        "process": process_note,
        "distributed": "distributed runtime; solver partitions run on forked "
        "compute-node processes, one per <node> tag value",
    }.get(runtime, runtime)
    print(f"sequential render : {sequential_time:6.2f} s ({mode} mode)")
    print(f"S-Net coordinated : {run.seconds:6.2f} s ({note})")
    print(f"pixel difference  : {difference:.2e} (must be 0: same algorithm, same image)")
    print(f"rays cast         : {run.rays_cast}")
    print(f"records traced    : {tracer.count('consume')} consumed, "
          f"{tracer.count('produce')} produced")

    with open("raytraced.ppm", "wb") as handle:
        handle.write(to_ppm(run.image))
    print("wrote raytraced.ppm")


if __name__ == "__main__":
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 96
    runtime = sys.argv[3] if len(sys.argv) > 3 else "threaded"
    mode = sys.argv[4] if len(sys.argv) > 4 else "scalar"
    main(width, height, runtime, mode)
