"""Quickstart: build and run a small S-Net streaming network.

This example shows the core S-Net concepts on a toy pipeline:

* boxes (stateless stream transformers with declared signatures),
* flow inheritance (labels a box does not consume travel on),
* filters and synchrocells,
* serial / parallel / star combinators,
* the textual S-Net syntax and the threaded runtime.

Run with:  python examples/quickstart.py
"""

from repro.snet import Record, box
from repro.snet.combinators import Parallel, Serial, Star
from repro.snet.filters import Filter
from repro.snet.lang.builder import build_network
from repro.snet.network import run_network
from repro.snet.patterns import Guard, Pattern, TagRef
from repro.snet.runtime import run_threaded
from repro.snet.synchrocell import SyncroCell


# -- 1. boxes -----------------------------------------------------------------
@box("(value) -> (squared)")
def square(value):
    return {"squared": value * value}


@box("(squared, <offset>) -> (result)")
def shift(squared, offset):
    return {"result": squared + offset}


def programmatic_pipeline() -> None:
    """Compose boxes with combinators and run them on the threaded runtime."""
    pipeline = Serial(square, shift)
    inputs = [Record({"value": v, "<offset>": 100, "label": f"record-{v}"}) for v in range(5)]
    outputs = run_threaded(pipeline, inputs)
    print("pipeline results:", sorted(r.field("result") for r in outputs))
    # flow inheritance carried the untouched 'label' field all the way through
    print("labels preserved:", sorted(r.field("label") for r in outputs))


def synchronisation_example() -> None:
    """Combine two independent streams with a synchrocell inside a star."""
    sync = SyncroCell([["left"], ["right"]])

    @box("(left, right) -> (pair)")
    def combine(left, right):
        return {"pair": (left, right)}

    # keep synchronising until a record carries the <done> tag
    network = Star(Serial(sync, Parallel(combine, Filter.identity())), Pattern(["pair"]))
    inputs = [
        Record({"left": "L0"}),
        Record({"right": "R0"}),
        Record({"left": "L1"}),
        Record({"right": "R1"}),
    ]
    outputs = run_network(network, inputs)
    print("synchronised pairs:", [r.field("pair") for r in outputs if r.has_field("pair")])


def textual_network() -> None:
    """The same pipeline written in the paper's textual S-Net syntax."""
    source = """
    net quickstart {
        box square ((value) -> (squared));
        box shift ((squared, <offset>) -> (result));
    } connect square .. shift;
    """
    env = {
        "square": lambda value: {"squared": value * value},
        "shift": lambda squared, offset: {"result": squared + offset},
    }
    netdef = build_network(source, env)
    outputs = run_network(netdef.network, [Record({"value": 7, "<offset>": 1})])
    print("textual network result:", outputs[0].field("result"))


def counting_loop() -> None:
    """Serial replication: iterate a box until a guard over tags is met."""

    @box("(<n>) -> (<n>)")
    def increment(n):
        return {"<n>": n + 1}

    loop = Star(increment, Pattern(["<n>"], Guard(TagRef("n") >= 10)))
    outputs = run_network(loop, [Record({"<n>": 0})])
    print("star loop counted to:", outputs[0].tag("n"))


if __name__ == "__main__":
    programmatic_pipeline()
    synchronisation_example()
    textual_network()
    counting_loop()
