"""The multi-tenant front door: admission, fairness and warm sharing live.

`RenderGateway` puts a production-style admission layer in front of the
persistent `RenderService`: requests arrive as JSON lines over TCP, each
naming a *tenant*; the gateway enforces per-tenant token-bucket quotas
(over-rate requests are rejected with a structured ``retry_after``, never
queued), and admitted jobs are dispatched weighted-fair across tenants so a
flood from one tenant cannot starve the others.

This demo starts a gateway with three tenants — ``studio`` (weight 3),
``indie`` (weight 1) and ``flood`` (weight 1, but rate-limited hard) — and
pushes a burst of requests from each over one pipelined connection.  Watch:

* ``flood`` gets structured rejections once its bucket drains;
* ``studio`` and ``indie`` both finish (no starvation), with ``studio``
  served ahead by its weight;
* all tenants rendering the same scene content share warm-pool slots.

Run with:  python examples/gateway_demo.py [width] [height] [requests_per_tenant]
"""

import sys

from repro.apps import GatewayClient, RenderGateway, TenantPolicy


def main(width: int = 48, height: int = 48, per_tenant: int = 6) -> None:
    tenants = {
        "studio": TenantPolicy(weight=3.0, max_pending=per_tenant),
        "indie": TenantPolicy(weight=1.0, max_pending=per_tenant),
        "flood": TenantPolicy(weight=1.0, rate=4.0, burst=2,
                              max_pending=per_tenant),
    }
    scenes = [
        {"kind": "animation", "frames": 3, "frame": i, "num_spheres": 24}
        for i in range(3)
    ]
    with RenderGateway(width=width, height=height, tenants=tenants,
                       max_scenes=len(scenes)) as gateway:
        print(f"gateway listening on {gateway.host}:{gateway.port} "
              f"({len(tenants)} tenants, {width}x{height})")
        with GatewayClient(gateway.host, gateway.port) as client:
            # pipelined burst: fire everything, then collect by echoed id
            sent = {}
            for i in range(per_tenant):
                for tenant in tenants:
                    rid = client.send({
                        "op": "render", "tenant": tenant,
                        "scene": scenes[i % len(scenes)],
                        "tasks": 4, "label": f"{tenant}/{i}",
                    })
                    sent[rid] = tenant
            served, rejected = [], []
            for _ in sent:
                reply = client.recv()
                (served if reply["status"] == "ok" else rejected).append(reply)
            for reply in served:
                print(f"  ok        {reply['label']:<10} "
                      f"{'warm' if reply['warm'] else 'cold'}  "
                      f"render {reply['seconds']:6.3f}s  "
                      f"queued {reply['queued_seconds']:6.3f}s")
            for reply in rejected:
                print(f"  rejected  {reply['tenant']:<10} "
                      f"{reply['error']} (retry after {reply['retry_after']}s)")
            metrics = client.metrics()
        gw, svc = metrics["gateway"], metrics["service"]
        print(f"admissions: {gw['requests']} requests, "
              f"{gw['rejected']} rejected at the door")
        for tenant, stats in svc["tenants"].items():
            print(f"  {tenant:<8} weight {stats['weight']:.0f}  "
                  f"served {stats['served']}  rejected "
                  f"{gw['tenants'][tenant]['rejected_rate']} (rate)")
        print(f"warm pool: {svc['warm_pool']['slots']} slots, "
              f"hit rate {svc['warm_hit_rate']:.0%}, "
              f"queue p95 {svc['latency']['queue_wait']['p95']:.3f}s")
    print("gateway closed")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        int(args[0]) if len(args) > 0 else 48,
        int(args[1]) if len(args) > 1 else 48,
        int(args[2]) if len(args) > 2 else 6,
    )
