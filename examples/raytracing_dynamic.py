"""Dynamic load balancing with node tokens (Fig. 4), end to end.

Shows the paper's headline methodology claim: switching from static to
dynamic scheduling changes *only* the coordination layer — the solver segment
of Fig. 4 replaces ``solver!@<node>`` — while the box code and the rest of
the network stay untouched, and the rendered image is identical.  Both
variants run on the same runtime backend, selectable by name, so the
comparison also demonstrates that the choice of execution strategy is
orthogonal to the coordination structure.

Run with:  python examples/raytracing_dynamic.py [runtime] [width] [height]

where ``runtime`` is ``threaded`` (default) or ``process``.
"""

import sys

from repro.apps import run_raytracing_farm
from repro.raytracer import Camera, random_scene, render
from repro.raytracer.image import image_rms_difference
from repro.scheduling import FactoringScheduler


def main(runtime: str = "threaded", width: int = 64, height: int = 64) -> None:
    scene = random_scene(num_spheres=30, clustering=0.7, seed=13)
    camera = Camera(width=width, height=height)
    reference = render(scene, camera)

    # static variant: every section is pre-assigned to a node
    static = run_raytracing_farm(
        "static", runtime=runtime, width=width, height=height, nodes=4, tasks=8, scene=scene
    )

    # dynamic variant: 8 sections, only 4 initial tokens; sections queue for
    # a node token released by each finished section (Fig. 4)
    dynamic = run_raytracing_farm(
        "dynamic",
        runtime=runtime,
        width=width,
        height=height,
        nodes=4,
        tasks=8,
        tokens=4,
        scene=scene,
        scheduler=FactoringScheduler(num_tasks=8),
    )

    print(f"runtime backend       : {runtime}")
    print("static  vs sequential :", image_rms_difference(static.image, reference))
    print("dynamic vs sequential :", image_rms_difference(dynamic.image, reference))
    print("static  vs dynamic    :", image_rms_difference(static.image, dynamic.image))
    print("-> the coordination change did not alter the computed image")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "threaded",
        int(sys.argv[2]) if len(sys.argv) > 2 else 64,
        int(sys.argv[3]) if len(sys.argv) > 3 else 64,
    )
