"""Dynamic load balancing with node tokens (Fig. 4), end to end.

Shows the paper's headline methodology claim: switching from static to
dynamic scheduling changes *only* the coordination layer — the solver segment
of Fig. 4 replaces ``solver!@<node>`` — while the box code and the rest of
the network stay untouched, and the rendered image is identical.

Run with:  python examples/raytracing_dynamic.py
"""

from repro.apps import (
    RealRenderBackend,
    build_dynamic_network,
    build_static_network,
    dynamic_input_records,
    extract_image,
    initial_record,
)
from repro.raytracer import Camera, random_scene, render
from repro.raytracer.image import image_rms_difference
from repro.scheduling import FactoringScheduler
from repro.snet.network import run_network


def main() -> None:
    scene = random_scene(num_spheres=30, clustering=0.7, seed=13)
    camera = Camera(width=64, height=64)
    reference = render(scene, camera)

    # static variant: every section is pre-assigned to a node
    static_backend = RealRenderBackend(scene, camera)
    static_net = build_static_network(static_backend)
    run_network(static_net, [initial_record(scene, nodes=4, tasks=8)])
    static_image = extract_image(static_backend)

    # dynamic variant: 8 sections, only 4 initial tokens; sections queue for
    # a node token released by each finished section (Fig. 4)
    dynamic_backend = RealRenderBackend(scene, camera)
    dynamic_net = build_dynamic_network(dynamic_backend, FactoringScheduler(num_tasks=8))
    run_network(dynamic_net, dynamic_input_records(scene, nodes=4, tasks=8, tokens=4))
    dynamic_image = extract_image(dynamic_backend)

    print("static  vs sequential :", image_rms_difference(static_image, reference))
    print("dynamic vs sequential :", image_rms_difference(dynamic_image, reference))
    print("static  vs dynamic    :", image_rms_difference(static_image, dynamic_image))
    print("-> the coordination change did not alter the computed image")


if __name__ == "__main__":
    main()
